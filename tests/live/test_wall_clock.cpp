// live::WallClock: the wall-time sim::Engine. Fast-replay must be
// indistinguishable from a Simulation run; real-time mode must map wall
// elapsed onto virtual milliseconds and honour the speed factor.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "live/wall_clock.hpp"
#include "simcore/simulation.hpp"

namespace spothost {
namespace {

using live::WallClock;
using sim::kSecond;
using sim::SimTime;

WallClock::Options replay_options() {
  WallClock::Options o;
  o.speed = WallClock::kMaxSpeed;
  return o;
}

TEST(WallClock, RejectsBadOptions) {
  WallClock::Options o;
  o.speed = 0.0;
  EXPECT_THROW(WallClock{o}, std::invalid_argument);
  o.speed = -2.0;
  EXPECT_THROW(WallClock{o}, std::invalid_argument);
  o.speed = 1.0;
  o.start_time = -1;
  EXPECT_THROW(WallClock{o}, std::invalid_argument);
}

TEST(WallClock, SchedulingGuardsMatchSimulation) {
  WallClock clock(replay_options());
  EXPECT_THROW(clock.after(-1, [] {}), std::invalid_argument);
  clock.poll();  // no-op on an empty queue
  clock.after(5, [] {});
  clock.poll();
  EXPECT_EQ(clock.now(), 5);
  EXPECT_THROW(clock.at(4, [] {}), std::invalid_argument);
}

TEST(WallClock, FastReplayPollCoalescesTimersInOrder) {
  // A burst of timers — out-of-order scheduling, duplicate timestamps —
  // drains in one poll() in (time, schedule-seq) order, exactly as a
  // Simulation would dispatch them.
  WallClock clock(replay_options());
  std::vector<int> fired;
  clock.at(30, [&] { fired.push_back(3); });
  clock.at(10, [&] { fired.push_back(1); });
  clock.at(20, [&] { fired.push_back(20); });
  clock.at(20, [&] { fired.push_back(21); });  // FIFO among equals
  clock.at(10, [&] { fired.push_back(2); });
  const std::size_t n = clock.poll();
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 20, 21, 3}));
  EXPECT_EQ(clock.now(), 30);
  EXPECT_EQ(clock.dispatched(), 5u);
  EXPECT_EQ(clock.pending(), 0u);
}

TEST(WallClock, FastReplayMatchesSimulationDispatch) {
  // The same scheduling program produces the same dispatch sequence and the
  // same now() trajectory on both engines.
  auto program = [](sim::Engine& engine, std::vector<SimTime>& times) {
    engine.after(3, [&engine, &times] {
      times.push_back(engine.now());
      engine.after(4, [&engine, &times] { times.push_back(engine.now()); });
    });
    engine.at(5, [&engine, &times] { times.push_back(engine.now()); });
    engine.run_until(100);
    times.push_back(engine.now());
  };
  std::vector<SimTime> sim_times;
  std::vector<SimTime> wall_times;
  sim::Simulation simulation;
  program(simulation, sim_times);
  WallClock clock(replay_options());
  program(clock, wall_times);
  EXPECT_EQ(sim_times, (std::vector<SimTime>{3, 5, 7, 100}));
  EXPECT_EQ(sim_times, wall_times);
  EXPECT_EQ(simulation.dispatched(), clock.dispatched());
}

TEST(WallClock, CancelPreventsDispatch) {
  WallClock clock(replay_options());
  bool fired = false;
  auto handle = clock.after(10, [&] { fired = true; });
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.cancel());  // second cancel is a harmless no-op
  clock.poll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(clock.dispatched(), 0u);
}

TEST(WallClock, WallUntilNextReflectsQueueState) {
  WallClock replay(replay_options());
  EXPECT_FALSE(replay.wall_until_next().has_value());
  replay.after(50, [] {});
  ASSERT_TRUE(replay.wall_until_next().has_value());
  EXPECT_EQ(replay.wall_until_next()->count(), 0);  // replay: always due now

  WallClock::Options slow;
  slow.speed = 1.0;
  WallClock realtime(slow);
  realtime.after(60 * kSecond, [] {});
  const auto wait = realtime.wall_until_next();
  ASSERT_TRUE(wait.has_value());
  // Due about a minute of wall time out (minus the test's epsilon of runtime).
  EXPECT_GT(*wait, std::chrono::seconds{50});
  EXPECT_LE(*wait, std::chrono::seconds{60});
}

TEST(WallClock, RealTimeRunAdvancesWithWallTime) {
  // 200 virtual ms at 100x ≈ 2 ms of wall time: fast enough for CI, real
  // enough to prove the engine actually paces on the wall clock.
  WallClock::Options o;
  o.speed = 100.0;
  WallClock clock(o);
  std::vector<SimTime> fired;
  clock.at(50, [&] { fired.push_back(clock.now()); });
  clock.at(200, [&] { fired.push_back(clock.now()); });
  const auto wall_start = std::chrono::steady_clock::now();
  clock.run_until(200);
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_EQ(fired, (std::vector<SimTime>{50, 200}));
  EXPECT_EQ(clock.now(), 200);
  // Must have taken at least the mapped wall duration (2 ms), but CI jitter
  // means we only bound it loosely from above.
  EXPECT_GE(wall_elapsed, std::chrono::milliseconds{1});
  EXPECT_LT(wall_elapsed, std::chrono::seconds{30});
}

TEST(WallClock, PollNeverMovesTimeBackwards) {
  WallClock::Options o;
  o.speed = 10000.0;  // a poll after any sleep lands well past the timers
  WallClock clock(o);
  std::vector<SimTime> fired;
  clock.after(1, [&] { fired.push_back(clock.now()); });
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  clock.poll();
  const SimTime after_first = clock.now();
  EXPECT_GE(after_first, 1);
  clock.poll();
  EXPECT_GE(clock.now(), after_first);
  EXPECT_EQ(fired.size(), 1u);
}

TEST(WallClock, StartTimeAnchorsVirtualAxis) {
  WallClock::Options o;
  o.speed = WallClock::kMaxSpeed;
  o.start_time = 42 * kSecond;
  WallClock clock(o);
  EXPECT_EQ(clock.now(), 42 * kSecond);
  EXPECT_THROW(clock.at(41 * kSecond, [] {}), std::invalid_argument);
  bool fired = false;
  clock.after(kSecond, [&] { fired = true; });
  clock.run_until(44 * kSecond);
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.now(), 44 * kSecond);
}

}  // namespace
}  // namespace spothost
