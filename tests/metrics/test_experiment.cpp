#include "metrics/experiment.hpp"

#include <gtest/gtest.h>

#include <array>

namespace spothost::metrics {
namespace {

using cloud::InstanceSize;
using sim::kDay;

sched::Scenario small_scenario() {
  sched::Scenario s;
  s.horizon = 5 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall};
  return s;
}

TEST(Aggregate, OfComputesMoments) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const auto a = Aggregate::of(xs);
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
  EXPECT_NEAR(a.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Aggregate, EmptyIsZero) {
  const std::vector<double> none;
  const auto a = Aggregate::of(none);
  EXPECT_DOUBLE_EQ(a.mean, 0.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
}

TEST(ExperimentRunner, RejectsZeroRuns) {
  EXPECT_THROW(ExperimentRunner(0), std::invalid_argument);
}

TEST(ExperimentRunner, RunsProduceAggregates) {
  const ExperimentRunner runner(3, 500, Execution::kParallel);
  const auto cfg = sched::proactive_config(
      {"us-east-1a", InstanceSize::kSmall});
  const auto agg = runner.run(small_scenario(), cfg);
  EXPECT_EQ(agg.runs, 3);
  EXPECT_EQ(agg.per_run.size(), 3u);
  EXPECT_GT(agg.normalized_cost_pct.mean, 5.0);
  EXPECT_LT(agg.normalized_cost_pct.mean, 70.0);
  EXPECT_GE(agg.unavailability_pct.mean, 0.0);
}

TEST(ExperimentRunner, ParallelMatchesSerial) {
  const auto cfg = sched::proactive_config(
      {"us-east-1a", InstanceSize::kSmall});
  const auto par =
      ExperimentRunner(3, 500, Execution::kParallel).run(small_scenario(), cfg);
  const auto ser =
      ExperimentRunner(3, 500, Execution::kSerial).run(small_scenario(), cfg);
  EXPECT_DOUBLE_EQ(par.normalized_cost_pct.mean, ser.normalized_cost_pct.mean);
  EXPECT_DOUBLE_EQ(par.unavailability_pct.mean, ser.unavailability_pct.mean);
  EXPECT_DOUBLE_EQ(par.forced_per_hour.mean, ser.forced_per_hour.mean);
}

TEST(ExperimentRunner, RunWithCustomBody) {
  const ExperimentRunner runner(4, 1, Execution::kSerial);
  int calls = 0;
  const auto agg = runner.run_with([&](std::uint64_t seed) {
    ++calls;
    RunMetrics m;
    m.normalized_cost_pct = static_cast<double>(seed % 10);
    return m;
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(agg.per_run.size(), 4u);
}

TEST(ExperimentRunner, CaptureTracesReportsPerSeedInSeedOrder) {
  const auto cfg = sched::proactive_config(
      {"us-east-1a", InstanceSize::kSmall});
  ExperimentRunner runner(3, 500, Execution::kParallel);
  runner.capture_traces(1 << 14);
  const auto agg = runner.run(small_scenario(), cfg);
  ASSERT_EQ(agg.traces.size(), 3u);
  for (std::size_t i = 0; i < agg.traces.size(); ++i) {
    const auto& trace = agg.traces[i];
    EXPECT_EQ(trace.seed, 500u + i * 7919u);
    EXPECT_FALSE(trace.events.empty());
    // Events arrive in non-decreasing simulation time.
    for (std::size_t j = 1; j < trace.events.size(); ++j) {
      EXPECT_LE(trace.events[j - 1].t, trace.events[j].t);
    }
    EXPECT_GT(trace.profile.events_dispatched, 0u);
  }
  // Without opting in, no traces are captured.
  const auto plain =
      ExperimentRunner(3, 500, Execution::kParallel).run(small_scenario(), cfg);
  EXPECT_TRUE(plain.traces.empty());
}

TEST(ExperimentRunner, CaptureTracesRejectsZeroCapacity) {
  ExperimentRunner runner(1, 1, Execution::kSerial);
  EXPECT_THROW(runner.capture_traces(0), std::invalid_argument);
}

TEST(RunHostingScenario, PureSpotHasWorseAvailabilityThanProactive) {
  // The Fig. 11 headline, as a property over a few seeds.
  const auto scenario = small_scenario();
  const ExperimentRunner runner(3, 42);
  const auto pro = runner.run(scenario, sched::proactive_config(
                                            {"us-east-1a", InstanceSize::kSmall}));
  const auto spot = runner.run(scenario, sched::pure_spot_config(
                                             {"us-east-1a", InstanceSize::kSmall}));
  EXPECT_GT(spot.unavailability_pct.mean, pro.unavailability_pct.mean);
}

}  // namespace
}  // namespace spothost::metrics
