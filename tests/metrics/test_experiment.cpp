#include "metrics/experiment.hpp"

#include <gtest/gtest.h>

#include <array>

namespace spothost::metrics {
namespace {

using cloud::InstanceSize;
using sim::kDay;

sched::Scenario small_scenario() {
  sched::Scenario s;
  s.horizon = 5 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall};
  return s;
}

TEST(Aggregate, OfComputesMoments) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const auto a = Aggregate::of(xs);
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
  EXPECT_NEAR(a.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Aggregate, EmptyIsZero) {
  const std::vector<double> none;
  const auto a = Aggregate::of(none);
  EXPECT_DOUBLE_EQ(a.mean, 0.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
}

TEST(ExperimentRunner, RejectsZeroRuns) {
  EXPECT_THROW(ExperimentRunner(0), std::invalid_argument);
}

TEST(ExperimentRunner, RunsProduceAggregates) {
  const ExperimentRunner runner(3, 500, /*parallel=*/true);
  const auto cfg = sched::proactive_config(
      {"us-east-1a", InstanceSize::kSmall});
  const auto agg = runner.run(small_scenario(), cfg);
  EXPECT_EQ(agg.runs, 3);
  EXPECT_EQ(agg.per_run.size(), 3u);
  EXPECT_GT(agg.normalized_cost_pct.mean, 5.0);
  EXPECT_LT(agg.normalized_cost_pct.mean, 70.0);
  EXPECT_GE(agg.unavailability_pct.mean, 0.0);
}

TEST(ExperimentRunner, ParallelMatchesSerial) {
  const auto cfg = sched::proactive_config(
      {"us-east-1a", InstanceSize::kSmall});
  const auto par = ExperimentRunner(3, 500, true).run(small_scenario(), cfg);
  const auto ser = ExperimentRunner(3, 500, false).run(small_scenario(), cfg);
  EXPECT_DOUBLE_EQ(par.normalized_cost_pct.mean, ser.normalized_cost_pct.mean);
  EXPECT_DOUBLE_EQ(par.unavailability_pct.mean, ser.unavailability_pct.mean);
  EXPECT_DOUBLE_EQ(par.forced_per_hour.mean, ser.forced_per_hour.mean);
}

TEST(ExperimentRunner, RunWithCustomBody) {
  const ExperimentRunner runner(4, 1, false);
  int calls = 0;
  const auto agg = runner.run_with([&](std::uint64_t seed) {
    ++calls;
    RunMetrics m;
    m.normalized_cost_pct = static_cast<double>(seed % 10);
    return m;
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(agg.per_run.size(), 4u);
}

TEST(RunHostingScenario, PureSpotHasWorseAvailabilityThanProactive) {
  // The Fig. 11 headline, as a property over a few seeds.
  const auto scenario = small_scenario();
  const ExperimentRunner runner(3, 42);
  const auto pro = runner.run(scenario, sched::proactive_config(
                                            {"us-east-1a", InstanceSize::kSmall}));
  const auto spot = runner.run(scenario, sched::pure_spot_config(
                                             {"us-east-1a", InstanceSize::kSmall}));
  EXPECT_GT(spot.unavailability_pct.mean, pro.unavailability_pct.mean);
}

}  // namespace
}  // namespace spothost::metrics
