#include "metrics/run_metrics.hpp"

#include <gtest/gtest.h>

#include "sched/baselines.hpp"
#include "simcore/simulation.hpp"

namespace spothost::metrics {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};

// Minimal deterministic world: a calm market, proactive scheduler, one day.
struct Harness {
  Harness() : rng(3), provider(sim, rng) {
    trace::PriceTrace t;
    t.append(0, 0.02);
    t.set_end(kDay);
    provider.add_market(kHome, std::move(t), 0.06);
    trace::PriceTrace u;
    u.append(0, 0.04);
    u.set_end(kDay);
    provider.add_market(MarketId{"us-east-1a", InstanceSize::kLarge},
                        std::move(u), 0.24);
    cloud::AllocationLatency lat;
    lat.on_demand_cv = 0.0;
    lat.spot_cv = 0.0;
    provider.set_allocation_latency("us-east-1a", lat);
    provider.start();
  }

  sim::Simulation sim;
  sim::RngFactory rng;
  cloud::CloudProvider provider;
};

TEST(RunMetrics, NormalizedCostAgainstBaseline) {
  Harness h;
  workload::AlwaysOnService service("svc", virt::VmSpec{});
  auto cfg = sched::proactive_config(kHome);
  cfg.timing_jitter_cv = 0.0;
  sched::CloudScheduler scheduler(h.sim, h.provider, service, cfg,
                                  h.rng.stream("t"));
  scheduler.start();
  h.sim.run_until(kDay);
  h.provider.finalize(kDay);
  scheduler.finalize(kDay);

  const auto m = compute_run_metrics(h.provider, scheduler, service, kDay, 0.06);
  // 24 spot hours at 0.02 vs baseline 24 x 0.06 => exactly one third.
  EXPECT_DOUBLE_EQ(m.total_cost, 24 * 0.02);
  EXPECT_DOUBLE_EQ(m.baseline_od_cost, 24 * 0.06);
  EXPECT_NEAR(m.normalized_cost_pct, 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.unavailability_pct, 0.0);
  EXPECT_EQ(m.forced, 0);
  EXPECT_DOUBLE_EQ(m.horizon_hours, 24.0);
}

TEST(RunMetrics, AttributedCostProRatesLargeBoxes) {
  // Hand-build a ledger-only check via a real run on the large market.
  Harness h;
  workload::AlwaysOnService service("svc", virt::VmSpec{});
  auto cfg = sched::proactive_config(kHome);
  cfg.scope = sched::MarketScope::kMultiMarket;
  cfg.timing_jitter_cv = 0.0;
  sched::CloudScheduler scheduler(h.sim, h.provider, service, cfg,
                                  h.rng.stream("t"));
  scheduler.start();
  h.sim.run_until(kDay);
  h.provider.finalize(kDay);
  scheduler.finalize(kDay);

  const auto m = compute_run_metrics(h.provider, scheduler, service, kDay, 0.06);
  // The scheduler picks the large box: raw 0.04/hr effective 0.01/hr share.
  EXPECT_DOUBLE_EQ(m.total_cost, 24 * 0.04);
  EXPECT_DOUBLE_EQ(m.attributed_cost, 24 * 0.01);
  EXPECT_NEAR(m.normalized_cost_pct, 100.0 * 0.01 / 0.06, 1e-9);
}

TEST(RunMetrics, MigrationRatesPerHour) {
  Harness h;
  workload::AlwaysOnService service("svc", virt::VmSpec{});
  auto cfg = sched::proactive_config(kHome);
  cfg.timing_jitter_cv = 0.0;
  sched::CloudScheduler scheduler(h.sim, h.provider, service, cfg,
                                  h.rng.stream("t"));
  scheduler.start();
  h.sim.run_until(kDay);
  h.provider.finalize(kDay);
  scheduler.finalize(kDay);
  const auto m = compute_run_metrics(h.provider, scheduler, service, kDay, 0.06);
  EXPECT_DOUBLE_EQ(m.forced_per_hour, 0.0);
  EXPECT_DOUBLE_EQ(m.planned_reverse_per_hour, 0.0);
}

}  // namespace
}  // namespace spothost::metrics
