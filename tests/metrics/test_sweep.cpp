#include "metrics/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace spothost::metrics {
namespace {

using cloud::InstanceSize;
using sim::kDay;

sched::Scenario small_scenario() {
  sched::Scenario s;
  s.horizon = 5 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall};
  return s;
}

cloud::MarketId home() { return {"us-east-1a", InstanceSize::kSmall}; }

// Bit-identical, not approximately equal: the sweep engine must not perturb
// any figure's numbers relative to the serial per-arm harness.
void expect_identical(const AggregatedMetrics& a, const AggregatedMetrics& b) {
  EXPECT_EQ(a.runs, b.runs);
  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t i = 0; i < a.per_run.size(); ++i) {
    EXPECT_EQ(a.per_run[i].total_cost, b.per_run[i].total_cost);
    EXPECT_EQ(a.per_run[i].normalized_cost_pct, b.per_run[i].normalized_cost_pct);
    EXPECT_EQ(a.per_run[i].unavailability_pct, b.per_run[i].unavailability_pct);
    EXPECT_EQ(a.per_run[i].downtime_s, b.per_run[i].downtime_s);
    EXPECT_EQ(a.per_run[i].forced, b.per_run[i].forced);
    EXPECT_EQ(a.per_run[i].planned, b.per_run[i].planned);
    EXPECT_EQ(a.per_run[i].market_switches, b.per_run[i].market_switches);
  }
  EXPECT_EQ(a.normalized_cost_pct.mean, b.normalized_cost_pct.mean);
  EXPECT_EQ(a.normalized_cost_pct.stddev, b.normalized_cost_pct.stddev);
  EXPECT_EQ(a.unavailability_pct.mean, b.unavailability_pct.mean);
  EXPECT_EQ(a.unavailability_pct.stddev, b.unavailability_pct.stddev);
  EXPECT_EQ(a.forced_per_hour.mean, b.forced_per_hour.mean);
  EXPECT_EQ(a.planned_reverse_per_hour.mean, b.planned_reverse_per_hour.mean);
}

TEST(SweepRunner, RejectsNonPositiveRuns) {
  EXPECT_THROW(SweepRunner(0), std::invalid_argument);
  EXPECT_THROW(SweepRunner(-3), std::invalid_argument);
}

TEST(SweepRunner, SeedsMatchExperimentRunnerDerivation) {
  const SweepRunner sweep(4, 500);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sweep.seed_for(i), run_seed(500, i));
    EXPECT_EQ(sweep.seed_for(i), 500u + static_cast<std::uint64_t>(i) * 7919u);
  }
}

TEST(SweepRunner, ParallelMatchesSerialBitIdentically) {
  auto build = [](Execution execution) {
    SweepRunner sweep(3, 500, execution);
    sweep.add_arm("proactive", small_scenario(), sched::proactive_config(home()));
    sweep.add_arm("reactive", small_scenario(), sched::reactive_config(home()));
    return sweep.run_all();
  };
  const auto par = build(Execution::kParallel);
  const auto ser = build(Execution::kSerial);
  ASSERT_EQ(par.size(), 2u);
  ASSERT_EQ(ser.size(), 2u);
  for (std::size_t a = 0; a < par.size(); ++a) {
    expect_identical(par[a], ser[a]);
  }
}

TEST(SweepRunner, MatchesPerArmExperimentRunner) {
  const auto scenario = small_scenario();
  SweepRunner sweep(3, 500);
  const int pro = sweep.add_arm("pro", scenario, sched::proactive_config(home()));
  const int rea = sweep.add_arm("rea", scenario, sched::reactive_config(home()));
  const auto results = sweep.run_all();

  const ExperimentRunner runner(3, 500);
  expect_identical(results[static_cast<std::size_t>(pro)],
                   runner.run(scenario, sched::proactive_config(home())));
  expect_identical(results[static_cast<std::size_t>(rea)],
                   runner.run(scenario, sched::reactive_config(home())));
}

TEST(SweepRunner, SharesTraceGenerationAcrossArms) {
  SweepRunner sweep(2, 500);
  const auto scenario = small_scenario();
  sweep.add_arm("a", scenario, sched::proactive_config(home()));
  sweep.add_arm("b", scenario, sched::reactive_config(home()));
  sweep.add_arm("c", scenario, sched::pure_spot_config(home()));
  const auto results = sweep.run_all();
  EXPECT_EQ(results.size(), 3u);
  // 3 arms x 2 seeds = 6 cells, but only one generation per seed.
  EXPECT_EQ(sweep.trace_cache()->generations(), 2u);
  EXPECT_EQ(sweep.trace_cache()->hits(), 4u);
}

TEST(SweepRunner, FaultPlanDoesNotSplitTheTraceCache) {
  // Fault injection perturbs the scheduler, not the market traces, so arms
  // differing only in fault plan share memoized sets.
  SweepRunner sweep(1, 500);
  const auto plain = small_scenario();
  auto faulty = plain;
  for (const faults::FaultKind kind : faults::kAllFaultKinds) {
    faulty.fault_plan.with_rate(kind, 0.05);
  }
  sweep.add_arm("plain", plain, sched::proactive_config(home()));
  sweep.add_arm("faulty", faulty, sched::proactive_config(home()));
  (void)sweep.run_all();
  EXPECT_EQ(sweep.trace_cache()->generations(), 1u);
}

TEST(SweepRunner, TracesForReturnsTheMemoizedSet) {
  SweepRunner sweep(2, 500);
  const auto scenario = small_scenario();
  sweep.add_arm("pro", scenario, sched::proactive_config(home()));
  (void)sweep.run_all();
  const auto generations = sweep.trace_cache()->generations();

  const auto traces = sweep.traces_for(scenario);
  ASSERT_NE(traces, nullptr);
  EXPECT_EQ(traces->seed(), sweep.seed_for(0));
  EXPECT_EQ(traces->markets().size(), 1u);
  // Served from the memo, not regenerated.
  EXPECT_EQ(sweep.trace_cache()->generations(), generations);

  const auto second = sweep.traces_for(scenario, 1);
  EXPECT_EQ(second->seed(), sweep.seed_for(1));
}

TEST(SweepRunner, ArmAccessorsRoundTrip) {
  SweepRunner sweep(1, 7);
  EXPECT_EQ(sweep.arm_count(), 0);
  const int idx =
      sweep.add_arm("label", small_scenario(), sched::proactive_config(home()));
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(sweep.arm_count(), 1);
  EXPECT_EQ(sweep.arm(0).label, "label");
  EXPECT_EQ(sweep.runs(), 1);
  EXPECT_THROW(sweep.arm(1), std::out_of_range);
}

}  // namespace
}  // namespace spothost::metrics
