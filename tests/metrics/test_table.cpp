#include "metrics/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spothost::metrics {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"market", "cost"});
  t.add_row({"us-east-1a/small", "17.2"});
  t.add_row({"eu", "33.0"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| market"), std::string::npos);
  EXPECT_NE(s.find("us-east-1a/small"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeadersRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(42.0, 0), "42");
}

TEST(Fmt, PlusMinus) {
  EXPECT_EQ(fmt_pm(10.0, 0.5, 1), "10.0 +- 0.5");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream out;
  print_banner(out, "Figure 6");
  EXPECT_EQ(out.str(), "\n== Figure 6 ==\n\n");
}

}  // namespace
}  // namespace spothost::metrics
