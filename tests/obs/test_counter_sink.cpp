#include "obs/counter_sink.hpp"

#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "obs/sink.hpp"
#include "sched/scheduler_config.hpp"

namespace spothost::obs {
namespace {

TEST(CounterSink, CountsByKindAndCode) {
  CounterSink counters;
  TraceEvent e;
  e.kind = EventKind::kMigrationBegin;
  e.code = code::kForced;
  counters.on_event(e);
  counters.on_event(e);
  e.code = code::kPlanned;
  counters.on_event(e);
  e.kind = EventKind::kMarketSwitch;
  e.code = code::kNone;
  counters.on_event(e);

  EXPECT_EQ(counters.count(EventKind::kMigrationBegin), 3u);
  EXPECT_EQ(counters.count(EventKind::kMigrationBegin, code::kForced), 2u);
  EXPECT_EQ(counters.count(EventKind::kMigrationBegin, code::kPlanned), 1u);
  EXPECT_EQ(counters.count(EventKind::kMigrationBegin, code::kReverse), 0u);
  EXPECT_EQ(counters.count(EventKind::kMarketSwitch), 1u);
  EXPECT_EQ(counters.count(EventKind::kOutageBegin), 0u);
  EXPECT_EQ(counters.total(), 4u);

  counters.clear();
  EXPECT_EQ(counters.total(), 0u);
  EXPECT_EQ(counters.count(EventKind::kMigrationBegin, code::kForced), 0u);
}

TEST(CounterSink, StatsMappingFromCounters) {
  CounterSink counters;
  auto emit = [&](EventKind kind, std::uint8_t c, int n) {
    TraceEvent e;
    e.kind = kind;
    e.code = c;
    for (int i = 0; i < n; ++i) counters.on_event(e);
  };
  emit(EventKind::kMigrationBegin, code::kForced, 3);
  emit(EventKind::kMigrationSwitchover, code::kPlanned, 5);
  emit(EventKind::kMigrationSwitchover, code::kReverse, 4);
  emit(EventKind::kMigrationSwitchover, code::kForced, 3);  // not planned/reverse
  emit(EventKind::kMigrationAbandon, code::kAbandonPriceRecovered, 2);
  emit(EventKind::kMigrationAbandon, code::kAbandonDestRevoked, 1);  // no cancel
  emit(EventKind::kMarketSwitch, code::kNone, 6);
  emit(EventKind::kSpotRequestFailed, code::kNone, 7);
  emit(EventKind::kBillingHourTick, code::kOnDemand, 8);

  const auto stats = sched::scheduler_stats_from(counters);
  EXPECT_EQ(stats.forced, 3);
  EXPECT_EQ(stats.planned, 5);
  EXPECT_EQ(stats.reverse, 4);
  EXPECT_EQ(stats.cancelled_planned, 2);
  EXPECT_EQ(stats.market_switches, 6);
  EXPECT_EQ(stats.spot_request_failures, 7);
  EXPECT_EQ(stats.od_hours_started, 8);
}

// The counter-as-backing-store guarantee, end to end: an *external*
// CounterSink attached to the run's tracer must reconstruct exactly the
// SchedulerStats the run reports — i.e. every stats-relevant event is
// emitted exactly once, by exactly one component.
TEST(CounterSink, ExternalSinkMatchesSchedulerStatsOnSeededRun) {
  for (const std::uint64_t seed : {42u, 9001u, 777u}) {
    sched::Scenario scenario;
    scenario.seed = seed;
    scenario.horizon = 10 * sim::kDay;
    const auto cfg =
        sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});

    Tracer tracer;
    CounterSink external;
    tracer.add_sink(&external);
    const auto m = metrics::run_hosting_scenario(scenario, cfg, &tracer, nullptr);

    const auto stats = sched::scheduler_stats_from(external);
    EXPECT_EQ(stats.forced, m.forced) << "seed " << seed;
    EXPECT_EQ(stats.planned, m.planned) << "seed " << seed;
    EXPECT_EQ(stats.reverse, m.reverse) << "seed " << seed;
    EXPECT_EQ(stats.cancelled_planned, m.cancelled_planned) << "seed " << seed;
    EXPECT_EQ(stats.market_switches, m.market_switches) << "seed " << seed;
  }
}

TEST(Tracer, EnabledTracksSinks) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  CounterSink a;
  CounterSink b;
  tracer.add_sink(&a);
  tracer.add_sink(&b);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.sink_count(), 2u);

  TraceEvent e;
  e.kind = EventKind::kPriceChange;
  tracer.emit(e);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);

  tracer.remove_sink(&a);
  tracer.emit(e);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 2u);
  tracer.remove_sink(&b);
  EXPECT_FALSE(tracer.enabled());
}

}  // namespace
}  // namespace spothost::obs
