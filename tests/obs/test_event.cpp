#include "obs/event.hpp"

#include <gtest/gtest.h>

namespace spothost::obs {
namespace {

TEST(EventKindNames, RoundTripEveryKind) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto name = to_string(kind);
    EXPECT_FALSE(name.empty());
    const auto back = event_kind_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(event_kind_from_string("not_a_kind").has_value());
  EXPECT_FALSE(event_kind_from_string("").has_value());
}

TEST(EventCodeLabels, KnownPairsHaveLabels) {
  EXPECT_EQ(code_label(EventKind::kMigrationBegin, code::kForced), "forced");
  EXPECT_EQ(code_label(EventKind::kMigrationBegin, code::kPlanned), "planned");
  EXPECT_EQ(code_label(EventKind::kMigrationBegin, code::kReverse), "reverse");
  EXPECT_EQ(code_label(EventKind::kBidPlaced, code::kSpot), "spot");
  EXPECT_EQ(code_label(EventKind::kBidPlaced, code::kOnDemand), "on_demand");
  EXPECT_EQ(code_label(EventKind::kPriceCrossing, code::kAbove), "above");
  EXPECT_EQ(code_label(EventKind::kOutageBegin, code::kCauseSpotLoss),
            "spot_loss");
  // A kind without a code vocabulary has no label.
  EXPECT_EQ(code_label(EventKind::kPriceChange, 0), "");
}

TEST(EventJsonl, RoundTripsAllFields) {
  TraceEvent e;
  e.t = 123456789;
  e.kind = EventKind::kAcquisition;
  e.code = code::kOnDemand;
  e.instance = 42;
  e.value = 0.0612;
  e.aux = 3.25;
  e.market = "us-east-1a/small";
  e.note = "hello \"quoted\" \\ world";
  const auto line = to_jsonl(e);
  const auto back = from_jsonl(line);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_EQ(*back, e);
}

TEST(EventJsonl, DefaultEventRoundTrips) {
  const TraceEvent e;
  const auto back = from_jsonl(to_jsonl(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(EventJsonl, EqualEventsSerializeToIdenticalBytes) {
  TraceEvent a;
  a.t = 7;
  a.kind = EventKind::kRevocationWarning;
  a.value = 0.1 + 0.2;  // shortest-round-trip formatting must be stable
  TraceEvent b = a;
  EXPECT_EQ(to_jsonl(a), to_jsonl(b));
}

TEST(EventJsonl, RejectsMalformedInput) {
  EXPECT_FALSE(from_jsonl("").has_value());
  EXPECT_FALSE(from_jsonl("{}").has_value());
  EXPECT_FALSE(from_jsonl("not json at all").has_value());
  EXPECT_FALSE(from_jsonl("{\"t\":1,\"kind\":\"no_such_kind\",\"code\":0,"
                          "\"instance\":0,\"value\":0,\"aux\":0,\"market\":\"\","
                          "\"note\":\"\"}")
                   .has_value());
}

}  // namespace
}  // namespace spothost::obs
