#include "obs/jsonl_sink.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace spothost::obs {
namespace {

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> out;
  TraceEvent a;
  a.t = 1000;
  a.kind = EventKind::kBidPlaced;
  a.code = code::kSpot;
  a.instance = 1;
  a.value = 0.24;
  a.market = "us-east-1a/small";
  out.push_back(a);
  TraceEvent b;
  b.t = 2000;
  b.kind = EventKind::kOutageBegin;
  b.code = code::kCauseSpotLoss;
  b.note = "service \"web\"";
  out.push_back(b);
  return out;
}

TEST(JsonlSink, WritesOneParsableLinePerEvent) {
  std::ostringstream os;
  JsonlSink sink(os);
  const auto events = sample_events();
  for (const auto& e : events) sink.on_event(e);
  sink.flush();
  EXPECT_EQ(sink.events_written(), events.size());

  std::istringstream is(os.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(is, line)) {
    const auto parsed = from_jsonl(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ASSERT_LT(i, events.size());
    EXPECT_EQ(*parsed, events[i]);
    ++i;
  }
  EXPECT_EQ(i, events.size());
}

TEST(JsonlSink, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "spothost_jsonl_sink_test.jsonl";
  const auto events = sample_events();
  {
    JsonlSink sink(path);
    for (const auto& e : events) sink.on_event(e);
  }  // destructor closes the file
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    const auto parsed = from_jsonl(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(*parsed, events[i]);
    ++i;
  }
  EXPECT_EQ(i, events.size());
}

TEST(JsonlSink, ThrowsOnUnopenablePath) {
  EXPECT_THROW(JsonlSink("/no/such/dir/trace.jsonl"), std::runtime_error);
}

}  // namespace
}  // namespace spothost::obs
