#include "obs/ring_sink.hpp"

#include <gtest/gtest.h>

namespace spothost::obs {
namespace {

TraceEvent event_at(sim::SimTime t) {
  TraceEvent e;
  e.t = t;
  e.kind = EventKind::kPriceChange;
  e.value = static_cast<double>(t) * 0.001;
  return e;
}

TEST(RingBufferSink, RejectsZeroCapacity) {
  EXPECT_THROW(RingBufferSink(0), std::invalid_argument);
}

TEST(RingBufferSink, StoresUpToCapacityInOrder) {
  RingBufferSink ring(4);
  for (sim::SimTime t = 0; t < 3; ++t) ring.on_event(event_at(t));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t, static_cast<sim::SimTime>(i));
  }
}

TEST(RingBufferSink, OverflowDropsOldestAndCounts) {
  RingBufferSink ring(3);
  for (sim::SimTime t = 0; t < 7; ++t) ring.on_event(event_at(t));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.dropped(), 4u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  // Survivors are the newest three, still oldest-first.
  EXPECT_EQ(events[0].t, 4);
  EXPECT_EQ(events[1].t, 5);
  EXPECT_EQ(events[2].t, 6);
}

TEST(RingBufferSink, ExactlyFullDoesNotDrop) {
  RingBufferSink ring(5);
  for (sim::SimTime t = 0; t < 5; ++t) ring.on_event(event_at(t));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.events().front().t, 0);
  EXPECT_EQ(ring.events().back().t, 4);
}

TEST(RingBufferSink, ClearResetsEverything) {
  RingBufferSink ring(2);
  for (sim::SimTime t = 0; t < 5; ++t) ring.on_event(event_at(t));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
  ring.on_event(event_at(9));
  ASSERT_EQ(ring.events().size(), 1u);
  EXPECT_EQ(ring.events()[0].t, 9);
}

}  // namespace
}  // namespace spothost::obs
