#include "sched/analysis.hpp"

#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"

namespace spothost::sched {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kMinute;

constexpr double kPon = 0.06;
constexpr double kBid = 0.24;

trace::PriceTrace step_trace() {
  // Calm at 0.02 with two excursions: one planned-grade (0.10 for 2 h), one
  // forced-grade (0.50 for 1 h).
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.append(10 * kHour, 0.10);
  t.append(12 * kHour, 0.02);
  t.append(30 * kHour, 0.50);
  t.append(31 * kHour, 0.02);
  t.set_end(48 * kHour);
  return t;
}

TEST(AnalyzeTrace, CountsExcursionsByClass) {
  const auto a = analyze_trace(step_trace(), kPon, kBid);
  EXPECT_EQ(a.excursions_above_pon, 2);
  EXPECT_EQ(a.excursions_above_bid, 1);
  EXPECT_EQ(a.time_above_pon, 3 * kHour);
  EXPECT_EQ(a.longest_excursion, 2 * kHour);
}

TEST(AnalyzeTrace, BelowPonStatistics) {
  const auto a = analyze_trace(step_trace(), kPon, kBid);
  EXPECT_NEAR(a.fraction_below_pon, 45.0 / 48.0, 1e-12);
  EXPECT_NEAR(a.mean_price_when_below, 0.02, 1e-12);
}

TEST(AnalyzeTrace, ExcursionOpenAtTraceEndStillCounted) {
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.append(10 * kHour, 0.50);
  t.set_end(12 * kHour);
  const auto a = analyze_trace(t, kPon, kBid);
  EXPECT_EQ(a.excursions_above_pon, 1);
  EXPECT_EQ(a.excursions_above_bid, 1);
  EXPECT_EQ(a.longest_excursion, 2 * kHour);
}

TEST(AnalyzeTrace, CalmTraceHasNoExcursions) {
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.set_end(kDay);
  const auto a = analyze_trace(t, kPon, kBid);
  EXPECT_EQ(a.excursions_above_pon, 0);
  EXPECT_DOUBLE_EQ(a.fraction_below_pon, 1.0);
}

TEST(AnalyzeTrace, RejectsBadInput) {
  trace::PriceTrace t;
  EXPECT_THROW(analyze_trace(t, kPon, kBid), std::invalid_argument);
  EXPECT_THROW(analyze_trace(step_trace(), 0.0, kBid), std::invalid_argument);
  EXPECT_THROW(analyze_trace(step_trace(), kPon, kPon / 2), std::invalid_argument);
}

TEST(EstimateHosting, StepTraceEstimateIsExactArithmetic) {
  const auto e = estimate_hosting(step_trace(), kPon);
  // Cost: 45h * 0.02 + 3h * 0.06 + 2 excursions * 0.5h * 0.06 = 1.14.
  EXPECT_NEAR(e.normalized_cost_pct, 100.0 * 1.14 / (48 * 0.06), 1e-9);
  EXPECT_NEAR(e.forced_per_hour, 1.0 / 48.0, 1e-12);
  EXPECT_NEAR(e.planned_reverse_per_hour, 3.0 / 48.0, 1e-12);
  EXPECT_GT(e.unavailability_pct, 0.0);
}

TEST(EstimateHosting, LazyCombosEstimateLessUnavailability) {
  EstimateParams lazy;
  lazy.combo = virt::MechanismCombo::kCkptLazyLive;
  EstimateParams full;
  full.combo = virt::MechanismCombo::kCkpt;
  EXPECT_LT(estimate_hosting(step_trace(), kPon, lazy).unavailability_pct,
            estimate_hosting(step_trace(), kPon, full).unavailability_pct);
}

TEST(EstimateHosting, AgreesWithSimulationOnSyntheticMarkets) {
  // Independent cross-check: closed-form estimate vs the full simulator on
  // the same generated market, averaged over seeds. Factors of ~2 are fine —
  // the estimate ignores allocation latencies, billing-hour alignment, and
  // spike cancellation.
  double est_cost = 0.0, sim_cost = 0.0, est_unavail = 0.0, sim_unavail = 0.0;
  const int seeds = 5;
  for (int i = 0; i < seeds; ++i) {
    Scenario scenario;
    scenario.seed = 900u + static_cast<std::uint64_t>(i);
    scenario.horizon = 30 * kDay;
    scenario.regions = {"us-east-1a"};
    scenario.sizes = {cloud::InstanceSize::kSmall};

    World world(scenario);
    const auto& price_trace =
        world.provider()
            .market({"us-east-1a", cloud::InstanceSize::kSmall})
            .price_trace();
    const auto est = estimate_hosting(price_trace, 0.06);
    est_cost += est.normalized_cost_pct;
    est_unavail += est.unavailability_pct;

    const auto run = metrics::run_hosting_scenario(
        scenario,
        proactive_config({"us-east-1a", cloud::InstanceSize::kSmall}));
    sim_cost += run.normalized_cost_pct;
    sim_unavail += run.unavailability_pct;
  }
  est_cost /= seeds;
  sim_cost /= seeds;
  est_unavail /= seeds;
  sim_unavail /= seeds;

  EXPECT_NEAR(est_cost, sim_cost, 0.35 * sim_cost);
  EXPECT_GT(est_unavail, sim_unavail / 4.0);
  EXPECT_LT(est_unavail, sim_unavail * 4.0);
}

}  // namespace
}  // namespace spothost::sched
