#include "sched/baselines.hpp"
#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};

TEST(Baselines, OnDemandOnlyCostIsPriceTimesHours) {
  sim::Simulation sim;
  sim::RngFactory rng(1);
  cloud::CloudProvider provider(sim, rng);
  trace::PriceTrace t;
  t.append(0, 0.01);
  t.set_end(30 * kDay);
  provider.add_market(kHome, std::move(t), 0.06);
  provider.start();
  EXPECT_DOUBLE_EQ(on_demand_only_cost(provider, kHome, 30 * kDay),
                   0.06 * 24 * 30);
  EXPECT_DOUBLE_EQ(on_demand_only_cost(provider, kHome, kHour + 1), 0.06 * 2);
}

TEST(Baselines, ReactivePreset) {
  const auto cfg = reactive_config(kHome);
  EXPECT_EQ(cfg.bid.mode, BiddingMode::kReactive);
  EXPECT_EQ(cfg.scope, MarketScope::kSingleMarket);
  EXPECT_EQ(cfg.fallback, Fallback::kOnDemand);
  EXPECT_EQ(cfg.home_market, kHome);
}

TEST(Baselines, ProactivePreset) {
  const auto cfg = proactive_config(kHome);
  EXPECT_EQ(cfg.bid.mode, BiddingMode::kProactive);
  EXPECT_DOUBLE_EQ(cfg.bid.proactive_multiple, 4.0);
  EXPECT_TRUE(cfg.on_demand_allowed());
}

TEST(Baselines, PureSpotPreset) {
  const auto cfg = pure_spot_config(kHome);
  EXPECT_EQ(cfg.fallback, Fallback::kPureSpot);
  EXPECT_FALSE(cfg.on_demand_allowed());
  EXPECT_EQ(cfg.bid.mode, BiddingMode::kReactive);  // bid = p_on
}

}  // namespace
}  // namespace spothost::sched
