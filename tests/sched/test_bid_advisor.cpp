#include "sched/bid_advisor.hpp"

#include <gtest/gtest.h>

#include <array>

namespace spothost::sched {
namespace {

using sim::kDay;
using sim::kHour;

constexpr double kPon = 0.06;

// Spikes of graded heights: 0.10 (cleared by any bid >= 1.67x), 0.30
// (needs > 5x), 0.50 (needs > 8.3x). Low bids turn the taller spikes into
// forced migrations; high bids ride them voluntarily.
trace::PriceTrace graded_trace() {
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.append(10 * kHour, 0.10);
  t.append(11 * kHour, 0.02);
  t.append(30 * kHour, 0.30);
  t.append(31 * kHour, 0.02);
  t.append(50 * kHour, 0.50);
  t.append(51 * kHour, 0.02);
  t.set_end(3 * kDay);
  return t;
}

TEST(BidAdvisor, DefaultSweepIsSane) {
  const auto multiples = default_bid_multiples();
  ASSERT_GE(multiples.size(), 4u);
  for (const double m : multiples) EXPECT_GT(m, 1.0);
}

TEST(BidAdvisor, HigherBidsEstimateFewerForcedMigrations) {
  const auto t = graded_trace();
  EstimateParams low;
  low.bid_multiple = 2.0;
  EstimateParams high;
  high.bid_multiple = 8.0 + 1.0;  // clears even the 0.50 spike (8.33x)
  EXPECT_GT(estimate_hosting(t, kPon, low).forced_per_hour,
            estimate_hosting(t, kPon, high).forced_per_hour);
}

TEST(BidAdvisor, RecommendsFeasibleCheapestBid) {
  // With a loose SLO every candidate is feasible and the advisor just picks
  // the cheapest; cost estimates barely depend on the multiple here, so the
  // recommendation must at least be feasible and well-formed.
  const auto rec = recommend_bid(graded_trace(), kPon, /*max_unavail=*/1.0);
  EXPECT_TRUE(rec.slo_met);
  EXPECT_GT(rec.multiple, 1.0);
  EXPECT_EQ(rec.candidates.size(), default_bid_multiples().size());
}

TEST(BidAdvisor, TightSloPushesBidUp) {
  // CKPT (slow restores) + a tight SLO: low bids (more forced migrations)
  // violate it, so the advisor must pick a higher multiple than with a
  // loose SLO.
  EstimateParams params;
  params.combo = virt::MechanismCombo::kCkpt;
  const auto loose =
      recommend_bid(graded_trace(), kPon, 1.0, {}, params);
  const auto tight =
      recommend_bid(graded_trace(), kPon, 0.002, {}, params);
  EXPECT_GE(tight.multiple, loose.multiple);
}

TEST(BidAdvisor, InfeasibleSloFallsBackToMostAvailable) {
  EstimateParams params;
  params.combo = virt::MechanismCombo::kCkpt;
  const auto rec = recommend_bid(graded_trace(), kPon, /*max_unavail=*/0.0,
                                 {}, params);
  EXPECT_FALSE(rec.slo_met);
  // The fallback is the most-available candidate in the sweep.
  for (const auto& c : rec.candidates) {
    EXPECT_GE(c.estimate.unavailability_pct,
              rec.estimate.unavailability_pct - 1e-12);
  }
}

TEST(BidAdvisor, CustomSweepRespected) {
  const std::array<double, 2> sweep{2.0, 4.0};
  const auto rec = recommend_bid(graded_trace(), kPon, 1.0, sweep);
  EXPECT_EQ(rec.candidates.size(), 2u);
  EXPECT_TRUE(rec.multiple == 2.0 || rec.multiple == 4.0);
}

TEST(BidAdvisor, RejectsBadInput) {
  EXPECT_THROW(recommend_bid(graded_trace(), kPon, -0.1), std::invalid_argument);
  const std::array<double, 1> bad{1.0};
  EXPECT_THROW(recommend_bid(graded_trace(), kPon, 1.0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace spothost::sched
