#include "sched/bidding.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;

class BiddingTest : public ::testing::Test {
 protected:
  BiddingTest() : rng_(1), provider_(sim_, rng_) {
    trace::PriceTrace t;
    t.append(0, 0.01);
    t.set_end(sim::kDay);
    provider_.add_market(MarketId{"us-east-1a", InstanceSize::kSmall},
                         std::move(t), 0.06);
    trace::PriceTrace u;
    u.append(0, 0.05);
    u.set_end(sim::kDay);
    provider_.add_market(MarketId{"eu-west-1a", InstanceSize::kLarge},
                         std::move(u), 0.276);
    provider_.start();
  }
  sim::Simulation sim_;
  sim::RngFactory rng_;
  cloud::CloudProvider provider_;
};

TEST_F(BiddingTest, ReactiveBidsExactlyOnDemand) {
  BidPolicy p;
  p.mode = BiddingMode::kReactive;
  EXPECT_DOUBLE_EQ(
      p.bid_for(provider_, MarketId{"us-east-1a", InstanceSize::kSmall}), 0.06);
  EXPECT_FALSE(p.plans_migrations());
}

TEST_F(BiddingTest, ProactiveBidsFourTimesOnDemand) {
  BidPolicy p;  // defaults: proactive, 4x
  EXPECT_DOUBLE_EQ(
      p.bid_for(provider_, MarketId{"us-east-1a", InstanceSize::kSmall}), 0.24);
  EXPECT_TRUE(p.plans_migrations());
}

TEST_F(BiddingTest, BidTracksMarketSpecificOnDemandPrice) {
  BidPolicy p;
  EXPECT_NEAR(p.bid_for(provider_, MarketId{"eu-west-1a", InstanceSize::kLarge}),
              4.0 * 0.276, 1e-9);
}

TEST_F(BiddingTest, ProactiveMultipleMustExceedOne) {
  BidPolicy p;
  p.proactive_multiple = 1.0;
  EXPECT_THROW(
      p.bid_for(provider_, MarketId{"us-east-1a", InstanceSize::kSmall}),
      std::logic_error);
}

TEST(Bidding, ModeNames) {
  EXPECT_EQ(to_string(BiddingMode::kReactive), "reactive");
  EXPECT_EQ(to_string(BiddingMode::kProactive), "proactive");
}

}  // namespace
}  // namespace spothost::sched
