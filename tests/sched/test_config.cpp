#include "sched/config.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/csv.hpp"
#include "trace/stats.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;

TEST(Table1Latency, MatchesPaperMeans) {
  EXPECT_DOUBLE_EQ(table1_allocation_latency("us-east-1a").on_demand_mean_s, 94.85);
  EXPECT_DOUBLE_EQ(table1_allocation_latency("us-east-1a").spot_mean_s, 281.47);
  EXPECT_DOUBLE_EQ(table1_allocation_latency("us-west-1a").on_demand_mean_s, 93.63);
  EXPECT_DOUBLE_EQ(table1_allocation_latency("us-west-1a").spot_mean_s, 219.77);
  EXPECT_DOUBLE_EQ(table1_allocation_latency("eu-west-1a").on_demand_mean_s, 98.08);
  EXPECT_DOUBLE_EQ(table1_allocation_latency("eu-west-1a").spot_mean_s, 233.37);
}

TEST(Table1Latency, SpotSlowerThanOnDemandEverywhere) {
  for (const char* region : {"us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a"}) {
    const auto lat = table1_allocation_latency(region);
    EXPECT_GT(lat.spot_mean_s, 2.0 * lat.on_demand_mean_s) << region;
  }
}

TEST(World, DefaultScenarioBuildsAllSixteenMarkets) {
  World world(Scenario{.seed = 1, .horizon = 2 * kDay});
  EXPECT_EQ(world.provider().all_markets().size(), 16u);
  EXPECT_EQ(world.provider().regions().size(), 4u);
}

TEST(World, RestrictedScenario) {
  Scenario s;
  s.seed = 1;
  s.horizon = 2 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall, InstanceSize::kLarge};
  World world(s);
  EXPECT_EQ(world.provider().all_markets().size(), 2u);
}

TEST(World, MarketTracesSpanHorizon) {
  World world(Scenario{.seed = 5, .horizon = 3 * kDay});
  for (const auto& market : world.provider().all_markets()) {
    const auto& t = world.provider().market(market).price_trace();
    EXPECT_EQ(t.end(), 3 * kDay) << market.str();
    EXPECT_FALSE(t.empty());
  }
}

TEST(World, OnDemandPricesFollowCatalog) {
  World world(Scenario{.seed = 1, .horizon = kDay});
  EXPECT_DOUBLE_EQ(
      world.provider().od_price({"us-east-1a", InstanceSize::kSmall}), 0.06);
  EXPECT_NEAR(world.provider().od_price({"eu-west-1a", InstanceSize::kXLarge}),
              0.48 * 1.15, 1e-12);
}

TEST(World, SpotMostlyUndercutsOnDemand) {
  World world(Scenario{.seed = 11, .horizon = 14 * kDay});
  for (const auto& market : world.provider().all_markets()) {
    const auto& t = world.provider().market(market).price_trace();
    const double od = world.provider().od_price(market);
    EXPECT_GT(t.fraction_below(od, 0, 14 * kDay), 0.85) << market.str();
  }
}

TEST(World, SameSeedIsBitReproducible) {
  const Scenario s{.seed = 77, .horizon = 2 * kDay};
  World a(s);
  World b(s);
  for (const auto& market : a.provider().all_markets()) {
    const auto& ta = a.provider().market(market).price_trace();
    const auto& tb = b.provider().market(market).price_trace();
    ASSERT_EQ(ta.size(), tb.size()) << market.str();
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta.points()[i].time, tb.points()[i].time);
      EXPECT_DOUBLE_EQ(ta.points()[i].price, tb.points()[i].price);
    }
  }
}

TEST(World, DifferentSeedsDiffer) {
  World a(Scenario{.seed = 1, .horizon = 2 * kDay});
  World b(Scenario{.seed = 2, .horizon = 2 * kDay});
  const auto market = a.provider().all_markets().front();
  const auto& ta = a.provider().market(market).price_trace();
  const auto& tb = b.provider().market(market).price_trace();
  bool identical = ta.size() == tb.size();
  if (identical) {
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta.points()[i].time != tb.points()[i].time ||
          ta.points()[i].price != tb.points()[i].price) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(World, IntraRegionCorrelationExceedsCrossRegion) {
  // The shared spike schedule correlates markets within a region; across
  // regions there is no shared component. Average over seeds to beat noise.
  double intra = 0.0, cross = 0.0;
  const int seeds = 6;
  for (int i = 0; i < seeds; ++i) {
    World world(Scenario{.seed = 100u + static_cast<std::uint64_t>(i),
                         .horizon = 14 * kDay});
    const auto& p = world.provider();
    const auto& east_small =
        p.market({"us-east-1a", InstanceSize::kSmall}).price_trace();
    const auto& east_large =
        p.market({"us-east-1a", InstanceSize::kLarge}).price_trace();
    const auto& west_small =
        p.market({"us-west-1a", InstanceSize::kSmall}).price_trace();
    intra += trace::trace_correlation(east_small, east_large);
    cross += trace::trace_correlation(east_small, west_small);
  }
  EXPECT_GT(intra / seeds, cross / seeds);
  // And correlation stays "low" in absolute terms (Fig. 8(b)): below 0.5.
  EXPECT_LT(intra / seeds, 0.5);
}

TEST(World, InvalidHorizonRejected) {
  EXPECT_THROW(World(Scenario{.seed = 1, .horizon = 0}), std::invalid_argument);
}

TEST(World, TraceDirOverridesMarketsFromCsv) {
  // Export one synthetic market to CSV, then rebuild a world that loads it:
  // that market must match the file exactly; others stay synthetic.
  const std::string dir = ::testing::TempDir() + "/spothost_traces";
  std::filesystem::create_directories(dir);

  Scenario base;
  base.seed = 31;
  base.horizon = 2 * kDay;
  base.regions = {"us-east-1a"};
  base.sizes = {InstanceSize::kSmall, InstanceSize::kLarge};
  World source(base);
  const auto& exported =
      source.provider().market({"us-east-1a", InstanceSize::kSmall}).price_trace();
  trace::save_csv_file(exported, dir + "/us-east-1a_small.csv");

  Scenario with_dir = base;
  with_dir.seed = 999;  // different seed: synthetic markets would differ
  with_dir.trace_dir = dir;
  World loaded(with_dir);
  const auto& small =
      loaded.provider().market({"us-east-1a", InstanceSize::kSmall}).price_trace();
  ASSERT_EQ(small.size(), exported.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.points()[i].time, exported.points()[i].time);
    EXPECT_DOUBLE_EQ(small.points()[i].price, exported.points()[i].price);
  }
  // The large market had no file: synthetic with the new seed, hence not
  // equal to the source world's large trace.
  const auto& large_src =
      source.provider().market({"us-east-1a", InstanceSize::kLarge}).price_trace();
  const auto& large_new =
      loaded.provider().market({"us-east-1a", InstanceSize::kLarge}).price_trace();
  bool identical = large_src.size() == large_new.size();
  if (identical) {
    for (std::size_t i = 0; i < large_src.size(); ++i) {
      if (large_src.points()[i].time != large_new.points()[i].time ||
          large_src.points()[i].price != large_new.points()[i].price) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(World, ShortTraceFileRejected) {
  const std::string dir = ::testing::TempDir() + "/spothost_short_trace";
  std::filesystem::create_directories(dir);
  trace::PriceTrace t;
  t.append(0, 0.01);
  t.set_end(kDay);  // shorter than the 2-day horizon
  trace::save_csv_file(t, dir + "/us-east-1a_small.csv");

  Scenario s;
  s.horizon = 2 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall};
  s.trace_dir = dir;
  EXPECT_THROW(World{s}, std::invalid_argument);
}

}  // namespace
}  // namespace spothost::sched
