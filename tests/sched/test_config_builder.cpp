#include "sched/scheduler_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};

TEST(SchedulerConfigValidate, DefaultsAreValid) {
  SchedulerConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_NO_THROW((void)cfg.validated());
}

TEST(SchedulerConfigValidate, RejectsEmptyHomeRegion) {
  SchedulerConfig cfg;
  cfg.home_market = MarketId{"", InstanceSize::kSmall};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchedulerConfigValidate, RejectsNegativeReverseMargin) {
  SchedulerConfig cfg;
  cfg.reverse_price_margin = -0.1;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("reverse_price_margin"),
              std::string::npos);
  }
}

TEST(SchedulerConfigValidate, RejectsNegativeJitterCv) {
  SchedulerConfig cfg;
  cfg.timing_jitter_cv = -0.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchedulerConfigValidate, RejectsNegativeCapacityOverride) {
  SchedulerConfig cfg;
  cfg.capacity_units_override = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchedulerConfigValidate, RejectsNonPositiveBidMultiple) {
  SchedulerConfig cfg;
  cfg.bid.proactive_multiple = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchedulerConfigValidate, RejectsBadStabilityKnobs) {
  SchedulerConfig cfg;
  cfg.stability_penalty_weight = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.stability_penalty_weight = 1.0;
  cfg.stability_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchedulerConfigValidate, ValidatedReturnsACopy) {
  SchedulerConfig cfg;
  cfg.reverse_price_margin = 0.8;
  const auto v = cfg.validated();
  EXPECT_DOUBLE_EQ(v.reverse_price_margin, 0.8);
}

TEST(SchedulerConfigBuilder, BuildsFluently) {
  const auto cfg =
      SchedulerConfigBuilder(kHome)
          .bid({.mode = BiddingMode::kProactive, .proactive_multiple = 4.0})
          .scope(MarketScope::kMultiRegion)
          .allowed_regions({"us-east-1a", "eu-west-1a"})
          .fallback(Fallback::kPureSpot)
          .planned_timing(PlannedTiming::kImmediate)
          .cancel_planned_on_price_drop(false)
          .reverse_price_margin(0.85)
          .timing_jitter_cv(0.1)
          .stability(StabilityPolicy::kPenalizeVolatility)
          .stability_penalty_weight(2.0)
          .stability_window(2 * sim::kDay)
          .capacity_units_override(4)
          .build();
  EXPECT_EQ(cfg.home_market, kHome);
  EXPECT_EQ(cfg.scope, MarketScope::kMultiRegion);
  EXPECT_EQ(cfg.fallback, Fallback::kPureSpot);
  EXPECT_FALSE(cfg.on_demand_allowed());
  EXPECT_EQ(cfg.planned_timing, PlannedTiming::kImmediate);
  EXPECT_FALSE(cfg.cancel_planned_on_price_drop);
  EXPECT_DOUBLE_EQ(cfg.reverse_price_margin, 0.85);
  EXPECT_DOUBLE_EQ(cfg.timing_jitter_cv, 0.1);
  EXPECT_EQ(cfg.stability, StabilityPolicy::kPenalizeVolatility);
  EXPECT_EQ(cfg.capacity_units_override, 4);
  EXPECT_EQ(cfg.allowed_regions.size(), 2u);
}

TEST(SchedulerConfigBuilder, BuildValidates) {
  EXPECT_THROW(SchedulerConfigBuilder(kHome).reverse_price_margin(-1.0).build(),
               std::invalid_argument);
  EXPECT_THROW(
      SchedulerConfigBuilder(MarketId{"", InstanceSize::kSmall}).build(),
      std::invalid_argument);
}

TEST(SchedulerConfigEnums, Names) {
  EXPECT_EQ(to_string(Fallback::kOnDemand), "on-demand");
  EXPECT_EQ(to_string(Fallback::kPureSpot), "pure-spot");
  EXPECT_EQ(to_string(PlannedTiming::kHourEnd), "hour-end");
  EXPECT_EQ(to_string(PlannedTiming::kImmediate), "immediate");
  EXPECT_EQ(to_string(StabilityPolicy::kIgnore), "ignore");
  EXPECT_EQ(to_string(StabilityPolicy::kPenalizeVolatility),
            "penalize-volatility");
}

}  // namespace
}  // namespace spothost::sched
