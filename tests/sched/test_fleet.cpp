#include "sched/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cloud/billing.hpp"
#include "cloud/instance_types.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;
using workload::OutageRecord;

TEST(OutageOverlap, EmptyFleetNeverDown) {
  const auto overlap = compute_outage_overlap({}, kDay);
  EXPECT_EQ(overlap.any_down, 0);
  EXPECT_EQ(overlap.max_concurrent, 0);
}

TEST(OutageOverlap, DisjointOutagesAdd) {
  std::vector<std::vector<OutageRecord>> per_service{
      {{kHour, 2 * kHour}},
      {{3 * kHour, 4 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, kDay);
  EXPECT_EQ(overlap.any_down, 2 * kHour);
  EXPECT_EQ(overlap.max_concurrent, 1);
}

TEST(OutageOverlap, OverlappingOutagesCountOnceForAnyDown) {
  std::vector<std::vector<OutageRecord>> per_service{
      {{kHour, 3 * kHour}},
      {{2 * kHour, 4 * kHour}},
      {{2 * kHour + 30 * sim::kMinute, 3 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, kDay);
  EXPECT_EQ(overlap.any_down, 3 * kHour);  // union [1h, 4h)
  EXPECT_EQ(overlap.max_concurrent, 3);
}

TEST(OutageOverlap, ClampsToHorizon) {
  std::vector<std::vector<OutageRecord>> per_service{{{kHour, 30 * kDay}}};
  const auto overlap = compute_outage_overlap(per_service, 2 * kHour);
  EXPECT_EQ(overlap.any_down, kHour);
}

TEST(OutageOverlap, ZeroLengthOutagesContributeNothing) {
  std::vector<std::vector<OutageRecord>> per_service{
      {{kHour, kHour}, {2 * kHour, 2 * kHour}},
      {{3 * kHour, 3 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, kDay);
  EXPECT_EQ(overlap.any_down, 0);
  EXPECT_EQ(overlap.max_concurrent, 0);
}

TEST(OutageOverlap, OutageEntirelyPastHorizonIsDropped) {
  // An outage that starts at (or after) the horizon is clipped to nothing;
  // one straddling it contributes only the in-horizon part.
  std::vector<std::vector<OutageRecord>> per_service{
      {{3 * kHour, 5 * kHour}},
      {{kHour, 4 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, 3 * kHour);
  EXPECT_EQ(overlap.any_down, 2 * kHour);  // [1h, 3h) survives
  EXPECT_EQ(overlap.max_concurrent, 1);    // the two never overlap in-horizon
}

TEST(OutageOverlap, TouchingIntervalsDoNotDoubleCountDepth) {
  // Service 0 ends exactly where service 1 begins: the union is contiguous
  // but at no instant are both down, so depth must stay 1.
  std::vector<std::vector<OutageRecord>> per_service{
      {{kHour, 2 * kHour}},
      {{2 * kHour, 3 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, kDay);
  EXPECT_EQ(overlap.any_down, 2 * kHour);
  EXPECT_EQ(overlap.max_concurrent, 1);
}

TEST(OutageOverlap, AllServicesDownPeakReachesFleetSize) {
  std::vector<std::vector<OutageRecord>> per_service{
      {{kHour, 4 * kHour}},
      {{2 * kHour, 3 * kHour}},
      {{2 * kHour, 5 * kHour}},
  };
  const auto overlap = compute_outage_overlap(per_service, kDay);
  EXPECT_EQ(overlap.max_concurrent, 3);  // all down over [2h, 3h)
  EXPECT_EQ(overlap.any_down, 4 * kHour);
}

class FleetTest : public ::testing::Test {
 protected:
  static Scenario scenario() {
    Scenario s;
    s.seed = 5;
    s.horizon = 10 * kDay;
    s.regions = {"us-east-1a"};
    return s;
  }
};

TEST_F(FleetTest, RejectsEmptyFleet) {
  World world(scenario());
  FleetConfig cfg;
  cfg.num_services = 0;
  EXPECT_THROW(FleetScheduler(world.clock(), world.provider(), cfg,
                              world.rng()),
               std::invalid_argument);
}

TEST_F(FleetTest, HostsWholeFleetThroughTheMonth) {
  World world(scenario());
  FleetConfig cfg;
  cfg.num_services = 4;
  cfg.service_template =
      proactive_config({"us-east-1a", InstanceSize::kSmall});
  FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
  fleet.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());

  const auto m = fleet.metrics(world.horizon());
  EXPECT_EQ(m.services, 4);
  EXPECT_GT(m.total_cost, 0.0);
  EXPECT_GT(m.normalized_cost_pct, 5.0);
  EXPECT_LT(m.normalized_cost_pct, 60.0);
  EXPECT_LT(m.mean_unavailability_pct, 0.1);
  EXPECT_GE(m.worst_unavailability_pct, m.mean_unavailability_pct);
}

TEST_F(FleetTest, MixedSizeFleetAttributesEachLeaseToItsOwner) {
  // Two-size fleet: services 0/2 are small-home (1 capacity unit), services
  // 1/3 large-home (a full box). attributed_cost must pro-rate every ledger
  // record by ITS owner's capacity need — the old code used service 0's
  // need for all records, undercounting every large service's lease.
  World world(scenario());
  FleetConfig cfg;
  cfg.num_services = 4;
  cfg.service_template = proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.home_markets = {{"us-east-1a", InstanceSize::kSmall},
                      {"us-east-1a", InstanceSize::kLarge}};
  FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
  fleet.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());

  const int units0 = fleet.scheduler(0).units_needed();
  bool mixed = false;
  double expected = 0.0;
  double service0_formula = 0.0;
  for (const auto& record : world.provider().ledger().records()) {
    // Every lease a fleet scheduler requests carries its service index.
    ASSERT_NE(record.owner, cloud::kNoOwner);
    ASSERT_LT(record.owner, 4u);
    const int capacity = cloud::type_info(record.market.size).capacity_units;
    const int units =
        fleet.scheduler(static_cast<int>(record.owner)).units_needed();
    if (units != units0) mixed = true;
    expected +=
        record.cost * std::min(1.0, static_cast<double>(units) / capacity);
    service0_formula +=
        record.cost * std::min(1.0, static_cast<double>(units0) / capacity);
  }
  ASSERT_TRUE(mixed);  // the scenario actually exercises two needs
  const auto m = fleet.metrics(world.horizon());
  EXPECT_DOUBLE_EQ(m.attributed_cost, expected);
  // A large service fills its whole box: per-owner attribution strictly
  // exceeds the old every-record-uses-service-0 formula.
  EXPECT_GT(m.attributed_cost, service0_formula);
}

TEST_F(FleetTest, SameMarketFleetSharesRevocations) {
  // All services in one market: a spike revokes everyone at once, so the
  // peak concurrent-down count should reach the fleet size at least once
  // over a long horizon (statistically robust with this seed).
  Scenario s = scenario();
  s.horizon = 30 * kDay;
  World world(s);
  FleetConfig cfg;
  cfg.num_services = 3;
  cfg.service_template = reactive_config({"us-east-1a", InstanceSize::kSmall});
  FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
  fleet.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());

  const auto m = fleet.metrics(world.horizon());
  EXPECT_GE(m.max_concurrent_down, 2);
  // Union downtime cannot exceed the sum of per-service downtimes.
  EXPECT_LE(m.any_down_pct, m.mean_unavailability_pct * m.services + 1e-9);
}

TEST_F(FleetTest, SpreadingHomesReducesCorrelatedOutages) {
  // Spreading the fleet across the two us-east zones should lower the peak
  // simultaneous-down count versus concentrating it in one market.
  Scenario s = scenario();
  s.horizon = 30 * kDay;
  s.regions = {"us-east-1a", "us-east-1b"};

  auto run_fleet = [&](std::vector<MarketId> homes) {
    World world(s);
    FleetConfig cfg;
    cfg.num_services = 4;
    cfg.service_template = reactive_config({"us-east-1a", InstanceSize::kSmall});
    cfg.home_markets = std::move(homes);
    FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
    fleet.start();
    world.engine().run_until(world.horizon());
    world.provider().finalize(world.horizon());
    fleet.finalize(world.horizon());
    return fleet.metrics(world.horizon());
  };

  const auto concentrated =
      run_fleet({MarketId{"us-east-1a", InstanceSize::kSmall}});
  const auto spread = run_fleet({MarketId{"us-east-1a", InstanceSize::kSmall},
                                 MarketId{"us-east-1b", InstanceSize::kSmall}});
  EXPECT_LE(spread.max_concurrent_down, concentrated.max_concurrent_down);
}

TEST_F(FleetTest, LargeFleetHoldsOneSubscriptionPerMarket) {
  // The shared MarketWatcher makes fleet price-feed cost O(markets), not
  // O(services x markets): 128 schedulers watching all 16 markets of the
  // full scenario must leave exactly one watcher subscription per market —
  // each market's feed has two observers (the provider's own revocation
  // logic plus the watcher), never 129.
  Scenario s;  // default regions x sizes: the full 4x4 = 16-market scenario
  s.seed = 5;
  s.horizon = 30 * kDay;
  World world(s);
  FleetConfig cfg;
  cfg.num_services = 128;
  cfg.service_template = proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.service_template.scope = MarketScope::kMultiRegion;
  FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
  fleet.start();

  const auto markets = world.provider().all_markets();
  ASSERT_EQ(markets.size(), 16u);
  EXPECT_EQ(fleet.watcher().provider_subscriptions(), markets.size());
  for (const auto& m : markets) {
    EXPECT_EQ(world.provider().market(m).observer_count(), 2u)
        << m.region << "/" << cloud::to_string(m.size);
  }

  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());
  const auto metrics = fleet.metrics(world.horizon());
  EXPECT_EQ(metrics.services, 128);
  EXPECT_GT(metrics.total_cost, 0.0);
  // Subscriptions stay bounded by market count for the whole month.
  EXPECT_EQ(fleet.watcher().provider_subscriptions(), markets.size());
}

TEST_F(FleetTest, AccessorsExposeUnits) {
  World world(scenario());
  FleetConfig cfg;
  cfg.num_services = 2;
  cfg.service_template = proactive_config({"us-east-1a", InstanceSize::kSmall});
  FleetScheduler fleet(world.clock(), world.provider(), cfg, world.rng());
  EXPECT_EQ(fleet.size(), 2);
  EXPECT_EQ(fleet.service(0).name(), "svc-0");
  EXPECT_EQ(fleet.service(1).name(), "svc-1");
  EXPECT_THROW(fleet.service(2), std::out_of_range);
}

}  // namespace
}  // namespace spothost::sched
