// Packed-group hosting through the scheduler: a ServiceGroup of nested VMs
// rides one shared server, with group-sized capacity and migration costs.
#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "metrics/experiment.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"
#include "workload/group.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;

SchedulerConfig group_config(int group_size) {
  // The group needs `group_size` small-units; the scheduler may pack it onto
  // any market with that much capacity.
  SchedulerConfig cfg = proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = MarketScope::kMultiMarket;
  cfg.capacity_units_override = group_size;
  return cfg;
}

TEST(GroupHosting, FourTenantsShareOneServerThroughAMonth) {
  Scenario scenario;
  scenario.seed = 21;
  scenario.horizon = 20 * kDay;
  scenario.regions = {"us-east-1a"};
  World world(scenario);

  workload::ServiceGroup group("tenant", 4,
                               virt::default_spec_for_memory(1.7, 8.0));
  SchedulerConfig cfg = group_config(group.size());
  cfg.vm_spec = group.aggregate_spec();
  CloudScheduler scheduler(world.clock(), world.provider(), group, cfg,
                           world.stream("t"));
  scheduler.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  scheduler.finalize(world.horizon());

  EXPECT_EQ(scheduler.units_needed(), 4);
  // Every tenant has identical books (they share the box).
  for (int i = 1; i < group.size(); ++i) {
    EXPECT_EQ(group.member(i).availability().total_downtime(),
              group.member(0).availability().total_downtime());
  }
  // Group stays near the always-on budget even though migrations move 4 VMs.
  EXPECT_LT(group.mean_unavailability_percent(), 0.1);
}

TEST(GroupHosting, PackingBeatsDedicatedSmallBoxesOnCost) {
  // Four tenants on one large/xlarge box (shared price) vs four dedicated
  // small boxes: the per-tenant attributed cost of the packed group should
  // not exceed 4x a single small hosting cost — and whenever a bigger box's
  // unit price undercuts the small market, it should be strictly cheaper.
  Scenario scenario;
  scenario.seed = 22;
  scenario.horizon = 20 * kDay;
  scenario.regions = {"us-east-1a"};

  // Packed run.
  double packed_cost = 0.0;
  {
    World world(scenario);
    workload::ServiceGroup group("tenant", 4,
                                 virt::default_spec_for_memory(1.7, 8.0));
    SchedulerConfig cfg = group_config(group.size());
    cfg.vm_spec = group.aggregate_spec();
    CloudScheduler scheduler(world.clock(), world.provider(), group, cfg,
                             world.stream("t"));
    scheduler.start();
    world.engine().run_until(world.horizon());
    world.provider().finalize(world.horizon());
    scheduler.finalize(world.horizon());
    for (const auto& rec : world.provider().ledger().records()) {
      const int capacity = cloud::type_info(rec.market.size).capacity_units;
      packed_cost += rec.cost * std::min(1.0, 4.0 / capacity);
    }
  }

  // Dedicated run: one small service, scaled by four.
  Scenario single = scenario;
  const auto m = metrics::run_hosting_scenario(
      single, proactive_config({"us-east-1a", InstanceSize::kSmall}));
  EXPECT_LT(packed_cost, 4.0 * m.attributed_cost * 1.10);
}

}  // namespace
}  // namespace spothost::sched
