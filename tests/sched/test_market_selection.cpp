#include "sched/market_selection.hpp"
#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;

// Two regions x two sizes with fixed prices chosen to exercise the
// effective-price packing logic.
class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() : rng_(1), provider_(sim_, rng_) {
    add("us-east-1a", InstanceSize::kSmall, 0.030, 0.06);
    add("us-east-1a", InstanceSize::kLarge, 0.080, 0.24);  // 0.02/unit
    add("eu-west-1a", InstanceSize::kSmall, 0.010, 0.069);
    add("eu-west-1a", InstanceSize::kLarge, 0.200, 0.276);
    provider_.start();
  }

  void add(const std::string& region, InstanceSize size, double spot, double od) {
    trace::PriceTrace t;
    t.append(0, spot);
    t.set_end(30 * kDay);
    provider_.add_market(MarketId{region, size}, std::move(t), od);
  }

  sim::Simulation sim_;
  sim::RngFactory rng_;
  cloud::CloudProvider provider_;
};

TEST_F(SelectionTest, EffectivePriceDividesByCapacity) {
  // Hosting a 1-unit service on the large box costs its share: 0.08/4.
  EXPECT_DOUBLE_EQ(
      effective_spot_price(provider_, {"us-east-1a", InstanceSize::kLarge}, 1),
      0.02);
  EXPECT_DOUBLE_EQ(
      effective_spot_price(provider_, {"us-east-1a", InstanceSize::kSmall}, 1),
      0.03);
  // A 4-unit service on a small box still pays 4 small-unit shares.
  EXPECT_DOUBLE_EQ(
      effective_spot_price(provider_, {"us-east-1a", InstanceSize::kLarge}, 4),
      0.08);
}

TEST_F(SelectionTest, EffectivePriceRejectsBadUnits) {
  EXPECT_THROW(
      effective_spot_price(provider_, {"us-east-1a", InstanceSize::kSmall}, 0),
      std::invalid_argument);
}

TEST_F(SelectionTest, CandidateMarketsRespectScope) {
  const MarketId home{"us-east-1a", InstanceSize::kSmall};
  EXPECT_EQ(candidate_markets(provider_, MarketScope::kSingleMarket, home, {}),
            std::vector<MarketId>{home});
  EXPECT_EQ(
      candidate_markets(provider_, MarketScope::kMultiMarket, home, {}).size(), 2u);
  EXPECT_EQ(
      candidate_markets(provider_, MarketScope::kMultiRegion, home, {}).size(), 4u);
  EXPECT_EQ(candidate_markets(provider_, MarketScope::kMultiRegion, home,
                              {"eu-west-1a"})
                .size(),
            2u);
}

TEST_F(SelectionTest, BestMarketPicksCheapestEffective) {
  const auto candidates =
      candidate_markets(provider_, MarketScope::kMultiMarket,
                        {"us-east-1a", InstanceSize::kSmall}, {});
  SelectionOptions opts;
  opts.units_needed = 1;
  opts.max_effective_price = 0.06;
  const auto best = best_spot_market(provider_, candidates, opts);
  ASSERT_TRUE(best.has_value());
  // The large box's per-unit share (0.02) beats the small market (0.03).
  EXPECT_EQ(*best, (MarketId{"us-east-1a", InstanceSize::kLarge}));
}

TEST_F(SelectionTest, ThresholdExcludesExpensiveMarkets) {
  const auto candidates =
      candidate_markets(provider_, MarketScope::kMultiMarket,
                        {"us-east-1a", InstanceSize::kSmall}, {});
  SelectionOptions opts;
  opts.units_needed = 1;
  opts.max_effective_price = 0.015;  // below everything
  EXPECT_FALSE(best_spot_market(provider_, candidates, opts).has_value());
}

TEST_F(SelectionTest, ExcludeSkipsCurrentMarket) {
  const auto candidates =
      candidate_markets(provider_, MarketScope::kMultiMarket,
                        {"us-east-1a", InstanceSize::kSmall}, {});
  SelectionOptions opts;
  opts.units_needed = 1;
  opts.max_effective_price = 0.06;
  opts.exclude = MarketId{"us-east-1a", InstanceSize::kLarge};
  const auto best = best_spot_market(provider_, candidates, opts);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (MarketId{"us-east-1a", InstanceSize::kSmall}));
}

TEST_F(SelectionTest, MultiRegionFindsForeignBargain) {
  const auto candidates =
      candidate_markets(provider_, MarketScope::kMultiRegion,
                        {"us-east-1a", InstanceSize::kSmall}, {});
  SelectionOptions opts;
  opts.units_needed = 1;
  opts.max_effective_price = 0.06;
  const auto best = best_spot_market(provider_, candidates, opts);
  ASSERT_TRUE(best.has_value());
  // eu-west small at 0.010/unit wins across regions.
  EXPECT_EQ(*best, (MarketId{"eu-west-1a", InstanceSize::kSmall}));
}

TEST_F(SelectionTest, CheapestOnDemandRegion) {
  EXPECT_EQ(cheapest_on_demand_region(provider_, {"us-east-1a", "eu-west-1a"},
                                      InstanceSize::kSmall),
            "us-east-1a");
  EXPECT_THROW(cheapest_on_demand_region(provider_, {}, InstanceSize::kSmall),
               std::invalid_argument);
}

TEST_F(SelectionTest, EffectiveOnDemandPrice) {
  EXPECT_DOUBLE_EQ(
      effective_on_demand_price(provider_, "us-east-1a", InstanceSize::kSmall),
      0.06);
  EXPECT_DOUBLE_EQ(
      effective_on_demand_price(provider_, "eu-west-1a", InstanceSize::kSmall),
      0.069);
}

TEST_F(SelectionTest, TrailingStddevZeroForFlatMarket) {
  sim_.run_until(kDay);
  EXPECT_DOUBLE_EQ(trailing_stddev(provider_,
                                   {"us-east-1a", InstanceSize::kSmall}, kDay,
                                   3 * kDay),
                   0.0);
}

TEST(SelectionStability, StabilityPenaltyRedirectsChoice) {
  // Build a dedicated provider where the cheapest market is wildly volatile.
  sim::Simulation sim;
  sim::RngFactory rng(2);
  cloud::CloudProvider provider(sim, rng);
  trace::PriceTrace volatile_cheap;
  for (int i = 0; i < 48; ++i) {
    volatile_cheap.append(i * kHour, (i % 2 == 0) ? 0.005 : 0.055);
  }
  volatile_cheap.set_end(3 * kDay);
  trace::PriceTrace stable_mid;
  stable_mid.append(0, 0.030);
  stable_mid.set_end(3 * kDay);
  provider.add_market({"us-east-1a", cloud::InstanceSize::kSmall},
                      std::move(volatile_cheap), 0.06);
  provider.add_market({"us-east-1b", cloud::InstanceSize::kSmall},
                      std::move(stable_mid), 0.06);
  provider.start();
  // Land on a cheap phase of the volatile market (even hour -> 0.005).
  sim.run_until(46 * kHour + 30 * sim::kMinute);

  const auto candidates = provider.all_markets();
  SelectionOptions greedy;
  greedy.units_needed = 1;
  greedy.max_effective_price = 0.06;
  greedy.now = sim.now();
  const auto g = best_spot_market(provider, candidates, greedy);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->region, "us-east-1a");  // greedy chases the cheap price

  SelectionOptions stable = greedy;
  stable.stability = StabilityPolicy::kPenalizeVolatility;
  stable.stability_penalty_weight = 2.0;
  stable.stability_window = 2 * kDay;
  const auto s = best_spot_market(provider, candidates, stable);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->region, "us-east-1b");  // stability-aware prefers the calm one
}

TEST(Selection, ScopeNames) {
  EXPECT_EQ(to_string(MarketScope::kSingleMarket), "single-market");
  EXPECT_EQ(to_string(MarketScope::kMultiRegion), "multi-region");
}

}  // namespace
}  // namespace spothost::sched
