#include "sched/market_traces.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hpp"
#include "trace/csv.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using sim::kDay;

Scenario one_region_scenario() {
  Scenario s;
  s.seed = 500;
  s.horizon = 5 * kDay;
  s.regions = {"us-east-1a"};
  return s;
}

TEST(MarketTraceSet, GeneratesEveryMarketInRegistrationOrder) {
  const auto traces = MarketTraceSet::generate(one_region_scenario());
  ASSERT_EQ(traces->markets().size(), 4u);  // one region x four sizes
  EXPECT_EQ(traces->markets()[0].id.region, "us-east-1a");
  EXPECT_EQ(traces->markets()[0].id.size, InstanceSize::kSmall);
  EXPECT_EQ(traces->markets()[3].id.size, InstanceSize::kXLarge);
  for (const auto& entry : traces->markets()) {
    EXPECT_FALSE(entry.prices.empty());
    EXPECT_GT(entry.on_demand, 0.0);
    EXPECT_GE(entry.prices.end(), traces->horizon());
  }
  EXPECT_EQ(traces->seed(), 500u);
}

TEST(MarketTraceSet, MatchesWorldInlineGeneration) {
  const auto scenario = one_region_scenario();
  const auto traces = MarketTraceSet::generate(scenario);
  World world(scenario);  // generates inline
  for (const auto& entry : traces->markets()) {
    const auto& market = world.provider().market(entry.id);
    const auto& inline_points = market.price_trace().points();
    const auto& memo_points = entry.prices.points();
    ASSERT_EQ(memo_points.size(), inline_points.size());
    for (std::size_t i = 0; i < memo_points.size(); ++i) {
      EXPECT_EQ(memo_points[i].time, inline_points[i].time);
      EXPECT_EQ(memo_points[i].price, inline_points[i].price);
    }
  }
}

TEST(MarketTraceSet, WorldBuiltOnMemoizedSetIsIdentical) {
  const auto scenario = one_region_scenario();
  const auto traces = MarketTraceSet::generate(scenario);
  World generating(scenario);
  World memoized(scenario, traces);
  const cloud::MarketId home{"us-east-1a", InstanceSize::kSmall};
  const auto& a = generating.provider().market(home).price_trace();
  const auto& b = memoized.provider().market(home).price_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].time, b.points()[i].time);
    EXPECT_EQ(a.points()[i].price, b.points()[i].price);
  }
  EXPECT_EQ(memoized.trace_set().get(), traces.get());
}

TEST(MarketTraceSet, RejectsMismatchedScenario) {
  const auto traces = MarketTraceSet::generate(one_region_scenario());
  auto other = one_region_scenario();
  other.seed = 501;  // different traces — the set must not be reused
  EXPECT_THROW(World(other, traces), std::invalid_argument);
}

TEST(MarketTraceSet, PricesThrowsForUnknownMarket) {
  const auto traces = MarketTraceSet::generate(one_region_scenario());
  EXPECT_NO_THROW(traces->prices({"us-east-1a", InstanceSize::kSmall}));
  EXPECT_THROW(traces->prices({"eu-west-1a", InstanceSize::kSmall}),
               std::out_of_range);
}

TEST(MarketTraceSet, RegionTracesReturnsSizeOrderedTraces) {
  const auto traces = MarketTraceSet::generate(one_region_scenario());
  const auto region = traces->region_traces("us-east-1a");
  ASSERT_EQ(region.size(), 4u);
  EXPECT_TRUE(traces->region_traces("eu-west-1a").empty());
}

TEST(CacheKey, IgnoresFaultPlanAndGracePeriod) {
  const auto base = one_region_scenario();
  auto variant = base;
  variant.grace_period = 300 * sim::kSecond;
  for (const faults::FaultKind kind : faults::kAllFaultKinds) {
    variant.fault_plan.with_rate(kind, 0.1);
  }
  EXPECT_EQ(MarketTraceSet::cache_key(base), MarketTraceSet::cache_key(variant));
}

TEST(CacheKey, DistinguishesTraceInputs) {
  const auto base = one_region_scenario();
  const auto key = MarketTraceSet::cache_key(base);

  auto seeded = base;
  seeded.seed = 501;
  EXPECT_NE(MarketTraceSet::cache_key(seeded), key);

  auto longer = base;
  longer.horizon = 6 * kDay;
  EXPECT_NE(MarketTraceSet::cache_key(longer), key);

  auto wider = base;
  wider.regions = {"us-east-1a", "us-east-1b"};
  EXPECT_NE(MarketTraceSet::cache_key(wider), key);

  // Defaulted regions/sizes normalize to the canonical lists, so an
  // explicit spelling of the defaults is the SAME key.
  Scenario defaulted;
  defaulted.seed = base.seed;
  defaulted.horizon = base.horizon;
  Scenario spelled = defaulted;
  spelled.regions = {"us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a"};
  EXPECT_EQ(MarketTraceSet::cache_key(defaulted),
            MarketTraceSet::cache_key(spelled));
}

TEST(TraceCache, MemoizesBySeedAndCountsHits) {
  TraceCache cache;
  const auto scenario = one_region_scenario();
  const auto first = cache.get(scenario);
  const auto again = cache.get(scenario);
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.generations(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  auto other = scenario;
  other.seed = 501;
  const auto different = cache.get(other);
  EXPECT_NE(first.get(), different.get());
  EXPECT_EQ(cache.generations(), 2u);

  cache.clear();
  (void)cache.get(scenario);
  EXPECT_EQ(cache.generations(), 3u);
}

// Scratch directory holding one measured-trace CSV for us-east-1a/small.
// Writing a trace shorter than the scenario horizon makes generate() throw;
// rewriting it long enough repairs the same cache key in place.
class TraceCacheFailure : public ::testing::Test {
 protected:
  void SetUp() override {
    // Test name keys the scratch dir: ctest runs each TEST_F in its own
    // process, so concurrent tests of this suite never share a directory.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("spothost_trace_cache_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write_trace_ending_at(sim::SimTime end) {
    trace::PriceTrace t;
    t.append(0, 0.05);
    t.set_end(end);
    trace::save_csv_file(t, (dir_ / "us-east-1a_small.csv").string());
  }

  Scenario csv_scenario() {
    Scenario s = one_region_scenario();
    s.trace_dir = dir_.string();
    return s;
  }

  std::filesystem::path dir_;
};

TEST_F(TraceCacheFailure, GenerationFailureIsNotCachedAndRetryRegenerates) {
  write_trace_ending_at(kDay);  // scenario horizon is 5 days — too short
  TraceCache cache;
  const auto scenario = csv_scenario();
  EXPECT_THROW((void)cache.get(scenario), std::invalid_argument);

  // The failed future must have been evicted: repairing the input and
  // retrying the SAME key regenerates instead of rethrowing a stale error.
  write_trace_ending_at(6 * kDay);
  const auto set = cache.get(scenario);
  ASSERT_EQ(set->markets().size(), 4u);
  EXPECT_GE(set->prices({"us-east-1a", InstanceSize::kSmall}).end(), 6 * kDay);
  EXPECT_GE(cache.generations(), 2u);
}

TEST_F(TraceCacheFailure, ConcurrentWaitersAllObserveTheException) {
  write_trace_ending_at(kDay);
  TraceCache cache;
  const auto scenario = csv_scenario();

  exec::ThreadPool pool(4);
  std::vector<std::future<bool>> threw;
  threw.reserve(12);
  for (int i = 0; i < 12; ++i) {
    threw.push_back(pool.submit([&cache, scenario] {
      try {
        (void)cache.get(scenario);
        return false;
      } catch (const std::invalid_argument&) {
        return true;  // owner and waiters alike see the generation error
      }
    }));
  }
  for (auto& f : threw) EXPECT_TRUE(f.get());

  write_trace_ending_at(6 * kDay);
  EXPECT_NO_THROW((void)cache.get(scenario));
}

}  // namespace
}  // namespace spothost::sched
