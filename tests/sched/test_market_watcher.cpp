// MarketWatcher: one provider subscription per market no matter how many
// listeners, deterministic fan-out order, typed hour-tick and revocation
// triggers. Plus the CrossingDetector edge semantics the scheduler's
// price-crossing events rely on.
#include "sched/market_watcher.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cloud/billing.hpp"
#include "simcore/simulation.hpp"

namespace spothost::sched {
namespace {

// The production surface is the TriggerListener interface (CloudScheduler
// implements it directly); tests wrap ad-hoc lambdas in an adapter the
// fixture owns.
struct FnListener final : MarketWatcher::TriggerListener {
  std::function<void(const MarketWatcher::Trigger&)> fn;
  explicit FnListener(std::function<void(const MarketWatcher::Trigger&)> f)
      : fn(std::move(f)) {}
  void on_trigger(const MarketWatcher::Trigger& t) override { fn(t); }
};

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kHour;
using sim::kMinute;

const MarketId kA{"us-east-1a", InstanceSize::kSmall};
const MarketId kB{"us-east-1b", InstanceSize::kSmall};
constexpr sim::SimTime kHorizon = 6 * kHour;

class MarketWatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<sim::RngFactory>(7);
    sim_ = std::make_unique<sim::Simulation>();
    provider_ = std::make_unique<cloud::CloudProvider>(*sim_, *rng_);
    add_market(kA, {{0, 0.02}, {kHour, 0.04}, {2 * kHour, 0.03}});
    add_market(kB, {{0, 0.05}, {3 * kHour, 0.01}});
    cloud::AllocationLatency lat;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 60.0;
    lat.spot_cv = 0.0;
    provider_->set_allocation_latency("us-east-1a", lat);
    provider_->start();
    watcher_ = std::make_unique<MarketWatcher>(*sim_, *provider_);
  }

  void add_market(const MarketId& market,
                  std::vector<std::pair<sim::SimTime, double>> steps) {
    trace::PriceTrace t;
    for (const auto& [at, price] : steps) t.append(at, price);
    t.set_end(kHorizon);
    provider_->add_market(market, std::move(t), 0.06);
  }

  MarketWatcher::ListenerId add_listener(
      std::function<void(const MarketWatcher::Trigger&)> fn) {
    owned_.push_back(std::make_unique<FnListener>(std::move(fn)));
    return watcher_->add_listener(owned_.back().get());
  }

  std::vector<std::unique_ptr<FnListener>> owned_;
  std::unique_ptr<sim::RngFactory> rng_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<MarketWatcher> watcher_;
};

TEST_F(MarketWatcherTest, SubscribesToEachProviderFeedOnce) {
  const auto l1 = add_listener([](const MarketWatcher::Trigger&) {});
  const auto l2 = add_listener([](const MarketWatcher::Trigger&) {});
  watcher_->watch(l1, {kA, kB});
  watcher_->watch(l2, {kA});
  watcher_->watch(l2, {kA});  // duplicate interest is a no-op

  EXPECT_EQ(watcher_->provider_subscriptions(), 2u);
  EXPECT_EQ(watcher_->listener_count(), 2u);
  // Each market feed: the provider's own revocation logic + the watcher.
  EXPECT_EQ(provider_->market(kA).observer_count(), 2u);
  EXPECT_EQ(provider_->market(kB).observer_count(), 2u);
}

TEST_F(MarketWatcherTest, DeliversPriceTriggersToInterestedListenersOnly) {
  std::vector<std::pair<MarketId, double>> seen_a;
  std::vector<std::pair<MarketId, double>> seen_b;
  const auto la = add_listener([&](const MarketWatcher::Trigger& t) {
    ASSERT_EQ(t.kind, MarketWatcher::TriggerKind::kPriceChange);
    seen_a.emplace_back(t.market, t.price);
  });
  const auto lb = add_listener([&](const MarketWatcher::Trigger& t) {
    seen_b.emplace_back(t.market, t.price);
  });
  watcher_->watch(la, {kA});
  watcher_->watch(lb, {kB});
  sim_->run_until(kHorizon);

  ASSERT_EQ(seen_a.size(), 2u);  // steps at 1 h and 2 h (t=0 is initial state)
  EXPECT_EQ(seen_a[0], (std::pair{kA, 0.04}));
  EXPECT_EQ(seen_a[1], (std::pair{kA, 0.03}));
  ASSERT_EQ(seen_b.size(), 1u);
  EXPECT_EQ(seen_b[0], (std::pair{kB, 0.01}));
}

TEST_F(MarketWatcherTest, FanOutFollowsRegistrationOrder) {
  std::vector<int> order;
  const auto first = add_listener(
      [&](const MarketWatcher::Trigger&) { order.push_back(1); });
  const auto second = add_listener(
      [&](const MarketWatcher::Trigger&) { order.push_back(2); });
  // Watch in reverse order: delivery must still follow listener
  // registration, which is what fleet determinism keys on.
  watcher_->watch(second, {kA});
  watcher_->watch(first, {kA});
  sim_->run_until(90 * kMinute);  // one step at 1 h
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(MarketWatcherTest, RemovedListenerReceivesNothing) {
  int fired = 0;
  const auto id = add_listener(
      [&](const MarketWatcher::Trigger&) { ++fired; });
  watcher_->watch(id, {kA});
  watcher_->remove_listener(id);
  sim_->run_until(kHorizon);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(watcher_->listener_count(), 0u);
  // The provider-side subscription is retained (bounded by market count).
  EXPECT_EQ(watcher_->provider_subscriptions(), 1u);
}

TEST_F(MarketWatcherTest, HourTickArrivesAsTypedTrigger) {
  std::vector<sim::SimTime> ticks;
  const auto id = add_listener([&](const MarketWatcher::Trigger& t) {
    ASSERT_EQ(t.kind, MarketWatcher::TriggerKind::kHourBoundary);
    ticks.push_back(sim_->now());
  });
  const auto ev = watcher_->schedule_hour_tick(id, 2 * kHour);
  (void)ev;
  watcher_->schedule_hour_tick(id, 4 * kHour);
  sim_->run_until(kHorizon);
  EXPECT_EQ(ticks, (std::vector<sim::SimTime>{2 * kHour, 4 * kHour}));
}

TEST_F(MarketWatcherTest, CancelledHourTickNeverFires) {
  int fired = 0;
  const auto id = add_listener(
      [&](const MarketWatcher::Trigger&) { ++fired; });
  auto ev = watcher_->schedule_hour_tick(id, 2 * kHour);
  EXPECT_TRUE(ev.cancel());
  sim_->run_until(kHorizon);
  EXPECT_EQ(fired, 0);
}

TEST_F(MarketWatcherTest, ArmedRevocationRoutesWarningToListener) {
  // Bid low enough that kA's step to 0.04 at t=1h outbids the instance.
  std::vector<MarketWatcher::Trigger> warnings;
  const auto id = add_listener([&](const MarketWatcher::Trigger& t) {
    if (t.kind == MarketWatcher::TriggerKind::kRevocation) warnings.push_back(t);
  });
  cloud::InstanceId granted = cloud::kInvalidInstance;
  provider_->request_spot(
      kA, 0.03,
      [&](cloud::InstanceId iid) {
        granted = iid;
        watcher_->arm_revocation(id, iid);
      },
      [](cloud::AllocFailure) { FAIL() << "spot request should be granted at 0.02"; });
  sim_->run_until(kHorizon);

  ASSERT_NE(granted, cloud::kInvalidInstance);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].instance, granted);
  EXPECT_EQ(warnings[0].t_term, kHour + provider_->grace_period());
}

// Inline ShardRouter double: run_stage executes tasks synchronously on the
// calling thread (the real engine's bit-identity makes that equivalent),
// recording how many stages ran and how many shards each staged.
struct FakeRouter final : sim::ShardRouter {
  sim::Clock& clock;
  std::size_t shards;
  int stages = 0;
  std::vector<std::size_t> staged_shards;  ///< non-null task count per stage
  FakeRouter(sim::Clock& c, std::size_t k) : clock(c), shards(k) {}
  [[nodiscard]] std::size_t shard_count() const noexcept override {
    return shards;
  }
  [[nodiscard]] sim::Clock& shard_clock(std::size_t) override { return clock; }
  void post(std::size_t, sim::Callback cb) override { cb(); }
  void run_stage(std::vector<sim::Callback> tasks) override {
    ++stages;
    std::size_t active = 0;
    for (auto& task : tasks) {
      if (!task) continue;
      ++active;
      task();
    }
    staged_shards.push_back(active);
  }
};

// FnListener with a controllable pre-screen verdict, counting how many
// times the watcher's stage consulted it.
struct ScreenedListener final : MarketWatcher::TriggerListener {
  std::function<void(const MarketWatcher::Trigger&)> fn;
  bool want = true;
  mutable int screened = 0;
  explicit ScreenedListener(std::function<void(const MarketWatcher::Trigger&)> f)
      : fn(std::move(f)) {}
  void on_trigger(const MarketWatcher::Trigger& t) override { fn(t); }
  [[nodiscard]] bool wants_trigger(const MarketWatcher::Trigger&) const override {
    ++screened;
    return want;
  }
};

struct ShardedWatcherTest : ::testing::Test {
  sim::RngFactory rng{7};
  sim::Simulation sim;
  cloud::CloudProvider provider{sim, rng};
  const MarketId pa{"push-a", InstanceSize::kSmall};
  const MarketId pb{"push-b", InstanceSize::kSmall};
  FakeRouter router{sim, 2};
  std::unique_ptr<MarketWatcher> watcher;

  void SetUp() override {
    provider.add_live_market(pa, 0.06);
    provider.add_live_market(pb, 0.06);
    provider.start();
    provider.market(pa).prime(0.02);
    provider.market(pb).prime(0.05);
    watcher = std::make_unique<MarketWatcher>(sim, provider);
    watcher->bind_shards(router);
  }
};

TEST_F(ShardedWatcherTest, PrescreenSkipsDecliningPinnedListeners) {
  // The stage evaluates every pinned listener's wants_trigger; delivery then
  // skips decliners and keeps strict registration order across the pinned /
  // unpinned interleaving — the property fleet byte-identity keys on.
  std::vector<int> order;
  ScreenedListener decliner([&](const MarketWatcher::Trigger&) {
    order.push_back(1);
  });
  decliner.want = false;
  FnListener unpinned([&](const MarketWatcher::Trigger&) { order.push_back(2); });
  ScreenedListener accepter([&](const MarketWatcher::Trigger&) {
    order.push_back(3);
  });
  const auto id_d = watcher->add_listener(&decliner);
  const auto id_u = watcher->add_listener(&unpinned);
  const auto id_a = watcher->add_listener(&accepter);
  watcher->watch(id_d, {pa});
  watcher->watch(id_u, {pa});
  watcher->watch(id_a, {pa});
  watcher->assign_shard(id_d, 0);
  watcher->assign_shard(id_a, 1);

  provider.market(pa).push_price(0.03);

  EXPECT_EQ(decliner.screened, 1);
  EXPECT_EQ(accepter.screened, 1);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));  // decliner skipped
  EXPECT_EQ(router.stages, 1);
  ASSERT_EQ(router.staged_shards.size(), 1u);
  EXPECT_EQ(router.staged_shards[0], 2u);  // one task per populated shard
}

TEST_F(ShardedWatcherTest, TickWithoutPinnedListenersStagesNothing) {
  FnListener unpinned([](const MarketWatcher::Trigger&) {});
  const auto id = watcher->add_listener(&unpinned);
  watcher->watch(id, {pa});
  provider.market(pa).push_price(0.03);
  EXPECT_EQ(router.stages, 0);
}

TEST_F(ShardedWatcherTest, ReentrantDispatchKeepsStageScratchIntact) {
  // A listener's on_trigger may reentrantly dispatch another price change.
  // The nested pass runs its own stage + delivery without moving or
  // clearing the outer pass's scratch: every pinned listener receives
  // exactly its own market's trigger, pre-screened entries after the
  // reentry point included.
  std::vector<std::pair<MarketId, double>> seen_a, seen_b, seen_c;
  ScreenedListener pinned_a([&](const MarketWatcher::Trigger& t) {
    seen_a.emplace_back(t.market, t.price);
  });
  FnListener reentrant([&](const MarketWatcher::Trigger&) {
    // Mid-delivery over pa's interest list (pinned_a delivered, pinned_c
    // screened but not yet delivered): a synchronous price step on pb
    // nests a second stage + dispatch.
    provider.market(pb).push_price(0.01);
  });
  ScreenedListener pinned_b([&](const MarketWatcher::Trigger& t) {
    seen_b.emplace_back(t.market, t.price);
  });
  ScreenedListener pinned_c([&](const MarketWatcher::Trigger& t) {
    seen_c.emplace_back(t.market, t.price);
  });
  const auto id_a = watcher->add_listener(&pinned_a);
  const auto id_r = watcher->add_listener(&reentrant);
  const auto id_b = watcher->add_listener(&pinned_b);
  const auto id_c = watcher->add_listener(&pinned_c);
  watcher->watch(id_a, {pa});
  watcher->watch(id_r, {pa});
  watcher->watch(id_c, {pa});
  watcher->watch(id_b, {pb});
  watcher->assign_shard(id_a, 0);
  watcher->assign_shard(id_b, 0);
  watcher->assign_shard(id_c, 1);

  provider.market(pa).push_price(0.03);

  EXPECT_EQ(router.stages, 2);  // outer pa stage + nested pb stage
  ASSERT_EQ(seen_a.size(), 1u);
  EXPECT_EQ(seen_a[0], (std::pair{pa, 0.03}));
  ASSERT_EQ(seen_b.size(), 1u);
  EXPECT_EQ(seen_b[0], (std::pair{pb, 0.01}));
  ASSERT_EQ(seen_c.size(), 1u);
  EXPECT_EQ(seen_c[0], (std::pair{pa, 0.03}));
}

TEST(CrossingDetector, FirstObservationBelowIsSteadyState) {
  CrossingDetector d;
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kNone);
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kNone);
}

TEST(CrossingDetector, FirstObservationAboveIsAnUpEdge) {
  CrossingDetector d;
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kUp);
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kNone);
}

TEST(CrossingDetector, ReportsEachTransitionOnce) {
  CrossingDetector d;
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kNone);
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kUp);
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kNone);
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kDown);
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kNone);
}

TEST(CrossingDetector, ResetForgetsHistory) {
  CrossingDetector d;
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kUp);
  d.reset();
  // After reset, a below-threshold observation is steady state again...
  EXPECT_EQ(d.observe(false), CrossingDetector::Edge::kNone);
  d.reset();
  // ...and an above-threshold one is a fresh up edge.
  EXPECT_EQ(d.observe(true), CrossingDetector::Edge::kUp);
}

}  // namespace
}  // namespace spothost::sched
