// PlacementPolicy — the "where to move" layer. Covers the default
// ScopedPlacementPolicy's selection rules and, as the extension-point proof,
// a toy "always-cheapest-region" policy plugged in through
// SchedulerConfig::placement and exercised end-to-end through a CloudScheduler
// run without touching scheduler or migration-engine internals.
#include "sched/placement.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cloud/billing.hpp"
#include "sched/baselines.hpp"
#include "sched/scheduler.hpp"
#include "simcore/simulation.hpp"
#include "workload/service.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};
const MarketId kAway{"us-east-1b", InstanceSize::kSmall};
constexpr sim::SimTime kHorizon = 2 * kDay;

struct Step {
  sim::SimTime at;
  double price;
};

/// Toy extension policy: always bid in the spot market of the home size
/// whose region currently has the lowest spot price, regardless of the
/// configured scope; on-demand fallback in the cheapest on-demand region.
class CheapestRegionPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "cheapest-region";
  }

  [[nodiscard]] std::vector<MarketId> watched_markets(
      const cloud::CloudProvider& provider,
      const SchedulerConfig& config) const override {
    std::vector<MarketId> out;
    for (const auto& region : provider.regions()) {
      const MarketId m{region, config.home_market.size};
      if (provider.has_market(m)) out.push_back(m);
    }
    return out;
  }

  [[nodiscard]] std::optional<Placement> choose_spot(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override {
    std::optional<Placement> best;
    double best_eff = 0.0;
    for (const auto& m : watched_markets(provider, config)) {
      if (query.exclude && m == *query.exclude) continue;
      const double eff = effective_spot_price(provider, m, query.units_needed);
      if (eff >= query.max_effective_price) continue;
      if (!best || eff < best_eff) {
        best = Placement{m, /*on_demand=*/false, config.bid.bid_for(provider, m)};
        best_eff = eff;
      }
    }
    return best;
  }

  [[nodiscard]] Placement choose_on_demand(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override {
    (void)query;
    const std::string region = cheapest_on_demand_region(
        provider, provider.regions(), config.home_market.size);
    return Placement{MarketId{region, config.home_market.size},
                     /*on_demand=*/true, 0.0};
  }
};

class PlacementTest : public ::testing::Test {
 protected:
  void build(std::vector<Step> home_steps,
             std::vector<std::pair<MarketId, std::vector<Step>>> extra = {}) {
    rng_ = std::make_unique<sim::RngFactory>(99);
    sim_ = std::make_unique<sim::Simulation>();
    provider_ = std::make_unique<cloud::CloudProvider>(*sim_, *rng_);
    add_market(kHome, std::move(home_steps), 0.06);
    for (auto& [market, steps] : extra) {
      add_market(market, std::move(steps),
                 cloud::on_demand_price(market.size, market.region));
    }
    cloud::AllocationLatency lat;
    lat.on_demand_mean_s = 95.0;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 240.0;
    lat.spot_cv = 0.0;
    for (const auto& region : provider_->regions()) {
      provider_->set_allocation_latency(region, lat);
    }
    provider_->start();
    service_ = std::make_unique<workload::AlwaysOnService>(
        "svc", virt::default_spec_for_memory(1.7, 8.0));
  }

  void add_market(const MarketId& market, std::vector<Step> steps, double od) {
    trace::PriceTrace t;
    for (const auto& s : steps) t.append(s.at, s.price);
    t.set_end(kHorizon);
    provider_->add_market(market, std::move(t), od);
  }

  void run_with(SchedulerConfig cfg, sim::SimTime until = kHorizon) {
    cfg.timing_jitter_cv = 0.0;
    scheduler_ = std::make_unique<CloudScheduler>(*sim_, *provider_, *service_,
                                                  cfg, rng_->stream("timing"));
    scheduler_->start();
    sim_->run_until(until);
    provider_->finalize(until);
    scheduler_->finalize(until);
  }

  std::unique_ptr<sim::RngFactory> rng_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<workload::AlwaysOnService> service_;
  std::unique_ptr<CloudScheduler> scheduler_;
};

TEST_F(PlacementTest, DefaultPolicyIsScoped) {
  const SchedulerConfig cfg = proactive_config(kHome);
  const auto policy = placement_policy_for(cfg);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "scoped");
  // The default is shared: repeated lookups hand out the same instance.
  EXPECT_EQ(policy.get(), placement_policy_for(cfg).get());
}

TEST_F(PlacementTest, ConfiguredPolicyWinsOverDefault) {
  SchedulerConfig cfg = proactive_config(kHome);
  const auto custom = std::make_shared<const CheapestRegionPolicy>();
  cfg.placement = custom;
  EXPECT_EQ(placement_policy_for(cfg).get(), custom.get());
}

TEST_F(PlacementTest, BuilderCarriesPlacementPolicy) {
  const auto custom = std::make_shared<const CheapestRegionPolicy>();
  const SchedulerConfig cfg =
      SchedulerConfigBuilder(kHome).placement(custom).build();
  EXPECT_EQ(cfg.placement.get(), custom.get());
}

TEST_F(PlacementTest, ScopedChoosesCheapestEffectiveMarket) {
  build({{0, 0.03}}, {{kAway, {{0, 0.01}}}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.scope = MarketScope::kMultiRegion;
  const ScopedPlacementPolicy policy;
  PlacementQuery query;
  query.max_effective_price = 0.06;
  const auto spot = policy.choose_spot(*provider_, cfg, query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->market, kAway);
  EXPECT_FALSE(spot->on_demand);
  EXPECT_GT(spot->bid, 0.0);
}

TEST_F(PlacementTest, ScopedHonoursExcludeAndCeiling) {
  build({{0, 0.03}}, {{kAway, {{0, 0.01}}}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.scope = MarketScope::kMultiRegion;
  const ScopedPlacementPolicy policy;
  PlacementQuery query;
  query.max_effective_price = 0.06;
  query.exclude = kAway;
  const auto spot = policy.choose_spot(*provider_, cfg, query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->market, kHome);

  query.exclude.reset();
  query.max_effective_price = 0.005;  // nobody qualifies
  EXPECT_FALSE(policy.choose_spot(*provider_, cfg, query).has_value());
}

TEST_F(PlacementTest, ScopedOnDemandFallsBackToQueryRegion) {
  build({{0, 0.03}}, {{kAway, {{0, 0.01}}}});
  const SchedulerConfig cfg = proactive_config(kHome);
  const ScopedPlacementPolicy policy;
  PlacementQuery query;
  query.fallback_region = "us-east-1b";
  const auto od = policy.choose_on_demand(*provider_, cfg, query);
  EXPECT_TRUE(od.on_demand);
  EXPECT_EQ(od.market.region, "us-east-1b");

  query.fallback_region.clear();
  EXPECT_EQ(policy.choose_on_demand(*provider_, cfg, query).market.region,
            kHome.region);
}

// The extension-point proof: a custom policy changes WHERE the scheduler
// goes, end to end, with zero changes to CloudScheduler or MigrationEngine.
TEST_F(PlacementTest, CustomPolicyDrivesInitialAcquisitionEndToEnd) {
  // Home spot costs 0.05; the away region sits at 0.01 the whole run. The
  // default single-market proactive config would stay home; the toy policy
  // must land the service in the away region from the start.
  build({{0, 0.05}}, {{kAway, {{0, 0.01}}}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.placement = std::make_shared<const CheapestRegionPolicy>();
  run_with(cfg);

  EXPECT_EQ(scheduler_->placement().name(), "cheapest-region");
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  ASSERT_NE(scheduler_->current_instance(), cloud::kInvalidInstance);
  EXPECT_EQ(provider_->instance(scheduler_->current_instance()).market, kAway);
  EXPECT_EQ(scheduler_->stats().forced, 0);
}

TEST_F(PlacementTest, DefaultPolicySameWorldStaysHome) {
  build({{0, 0.05}}, {{kAway, {{0, 0.01}}}});
  run_with(proactive_config(kHome));  // kSingleMarket scope, no custom policy
  EXPECT_EQ(scheduler_->placement().name(), "scoped");
  ASSERT_NE(scheduler_->current_instance(), cloud::kInvalidInstance);
  EXPECT_EQ(provider_->instance(scheduler_->current_instance()).market, kHome);
}

}  // namespace
}  // namespace spothost::sched
