// Policy zoo (sched/policy_zoo.hpp, sched/bidding.hpp BidStrategy): knob
// validation, selection behaviour of the portfolio / revocation-aware /
// forecast-bid strategies, byte-transparency of the BidStrategy seam, and
// per-policy same-seed determinism. bench_ablation_policies puts the same
// five policies on the cost-vs-unavailability frontier; tests here pin the
// properties the frontier relies on.
#include "sched/policy_zoo.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "cloud/billing.hpp"
#include "metrics/experiment.hpp"
#include "metrics/sweep.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "sched/baselines.hpp"
#include "sched/bidding.hpp"
#include "sched/scheduler.hpp"
#include "simcore/simulation.hpp"
#include "workload/service.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;
using sim::kMinute;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};
const MarketId kAway{"us-east-1b", InstanceSize::kSmall};
constexpr sim::SimTime kHorizon = 2 * kDay;

struct Step {
  sim::SimTime at;
  double price;
};

class PolicyZooTest : public ::testing::Test {
 protected:
  void build(std::vector<Step> home_steps,
             std::vector<std::pair<MarketId, std::vector<Step>>> extra = {}) {
    rng_ = std::make_unique<sim::RngFactory>(99);
    sim_ = std::make_unique<sim::Simulation>();
    provider_ = std::make_unique<cloud::CloudProvider>(*sim_, *rng_);
    add_market(kHome, std::move(home_steps), 0.06);
    for (auto& [market, steps] : extra) {
      add_market(market, std::move(steps), 0.06);
    }
    provider_->start();
  }

  void add_market(const MarketId& market, std::vector<Step> steps, double od) {
    trace::PriceTrace t;
    for (const auto& s : steps) t.append(s.at, s.price);
    t.set_end(kHorizon);
    provider_->add_market(market, std::move(t), od);
  }

  /// A multi-market query at `now` with the home on-demand price ceiling.
  [[nodiscard]] PlacementQuery query_at(sim::SimTime now) const {
    PlacementQuery q;
    q.units_needed = 1;
    q.max_effective_price = 0.06;
    q.now = now;
    return q;
  }

  [[nodiscard]] static SchedulerConfig multi_region(SchedulerConfig cfg) {
    cfg.scope = MarketScope::kMultiRegion;
    return cfg;
  }

  std::unique_ptr<sim::RngFactory> rng_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::CloudProvider> provider_;
};

// ---------------------------------------------------------------------------
// Knob validation
// ---------------------------------------------------------------------------

TEST(PolicyZooParams, PortfolioValidatesKnobs) {
  EXPECT_THROW(PortfolioPlacementPolicy({.basket_size = 0}),
               std::invalid_argument);
  EXPECT_THROW(PortfolioPlacementPolicy({.volatility_window = 0}),
               std::invalid_argument);
  EXPECT_THROW(PortfolioPlacementPolicy({.rebalance_period = -kHour}),
               std::invalid_argument);
  EXPECT_THROW(PortfolioPlacementPolicy({.volatility_floor = 0.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(PortfolioPlacementPolicy{});
}

TEST(PolicyZooParams, RevocationAwareValidatesKnobs) {
  EXPECT_THROW(RevocationAwarePolicy({.feature_window = 0}),
               std::invalid_argument);
  EXPECT_THROW(RevocationAwarePolicy({.min_history = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      RevocationAwarePolicy({.feature_window = kHour, .min_history = kDay}),
      std::invalid_argument);
  EXPECT_NO_THROW(RevocationAwarePolicy{});
}

TEST(PolicyZooParams, ForecastBidValidatesKnobs) {
  EXPECT_THROW(ForecastBidPolicy({.lookback = 0}), std::invalid_argument);
  EXPECT_THROW(ForecastBidPolicy({.sample_step = 0}), std::invalid_argument);
  EXPECT_THROW(ForecastBidPolicy({.smoothing = 0.0}), std::invalid_argument);
  EXPECT_THROW(ForecastBidPolicy({.smoothing = 1.5}), std::invalid_argument);
  EXPECT_THROW(ForecastBidPolicy({.headroom = 0.0}), std::invalid_argument);
  EXPECT_THROW(ForecastBidPolicy({.floor_multiple = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      ForecastBidPolicy({.floor_multiple = 2.0, .cap_multiple = 1.0}),
      std::invalid_argument);
  EXPECT_NO_THROW(ForecastBidPolicy{});
}

TEST(PolicyZooParams, ConfigValidatesPlacementSalt) {
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.placement_salt = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BidStrategy seam
// ---------------------------------------------------------------------------

TEST(BidStrategySeam, DefaultIsSharedStatic) {
  const SchedulerConfig cfg = proactive_config(kHome);
  const auto strategy = bid_strategy_for(cfg);
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->name(), "static");
  EXPECT_EQ(strategy.get(), bid_strategy_for(cfg).get());
}

TEST(BidStrategySeam, ConfiguredStrategyWinsAndBuilderCarriesIt) {
  const auto forecast = std::make_shared<const ForecastBidPolicy>();
  const SchedulerConfig cfg = SchedulerConfigBuilder(kHome)
                                  .bidding(forecast)
                                  .placement_salt(7)
                                  .build();
  EXPECT_EQ(bid_strategy_for(cfg).get(), forecast.get());
  EXPECT_EQ(cfg.placement_salt, 7);
}

TEST_F(PolicyZooTest, StaticStrategyMatchesBidPolicy) {
  build({{0, 0.03}});
  for (const auto mode : {BiddingMode::kReactive, BiddingMode::kProactive}) {
    SchedulerConfig cfg = proactive_config(kHome);
    cfg.bid.mode = mode;
    const StaticBidStrategy strategy;
    EXPECT_EQ(strategy.bid_for(*provider_, cfg, kHome, kHour),
              cfg.bid.bid_for(*provider_, kHome));
    EXPECT_EQ(strategy.plans_migrations(cfg), cfg.bid.plans_migrations());
  }
}

// ---------------------------------------------------------------------------
// ForecastBidPolicy
// ---------------------------------------------------------------------------

TEST_F(PolicyZooTest, ForecastBidClampsAndTracksHistory) {
  // Home hovers at 0.02; away spent the last day near 0.05.
  build({{0, 0.02}}, {{kAway, {{0, 0.02}, {kDay, 0.05}}}});
  const SchedulerConfig cfg = proactive_config(kHome);
  const ForecastBidPolicy policy;
  const double pon = provider_->od_price(kHome);

  // No committed history at t=0: fall back to the cap.
  EXPECT_DOUBLE_EQ(policy.bid_for(*provider_, cfg, kHome, 0),
                   policy.params().cap_multiple * pon);

  const double calm = policy.bid_for(*provider_, cfg, kHome, 2 * kDay);
  const double hot = policy.bid_for(*provider_, cfg, kAway, 2 * kDay);
  EXPECT_GE(calm, policy.params().floor_multiple * pon);
  EXPECT_LE(hot, policy.params().cap_multiple * pon);
  EXPECT_GT(hot, calm);  // pricier recent history => higher bid
}

TEST_F(PolicyZooTest, ForecastOfConstantTraceIsThatPrice) {
  build({{0, 0.03}});
  const ForecastBidPolicy policy;
  const auto& price_trace = provider_->market(kHome).price_trace();
  EXPECT_NEAR(policy.forecast(price_trace, 2 * kDay), 0.03, 1e-12);
}

// ---------------------------------------------------------------------------
// RevocationAwarePolicy
// ---------------------------------------------------------------------------

TEST_F(PolicyZooTest, RevocationAwarePrefersCalmMarketOverCheaperSpiky) {
  // Home is marginally cheaper but spikes above the reactive bid (p_on)
  // every few hours; away never crosses it.
  std::vector<Step> spiky;
  for (sim::SimTime t = 0; t < kHorizon; t += 4 * kHour) {
    spiky.push_back({t, 0.019});
    spiky.push_back({t + kHour, 0.08});  // above p_on = 0.06
    spiky.push_back({t + kHour + 30 * kMinute, 0.019});
  }
  build(spiky, {{kAway, {{0, 0.02}}}});
  SchedulerConfig cfg = multi_region(reactive_config(kHome));
  const RevocationAwarePolicy policy;

  const auto placement = policy.choose_spot(*provider_, cfg, query_at(kHorizon));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->market, kAway);
  EXPECT_DOUBLE_EQ(placement->bid, provider_->od_price(kAway));  // reactive

  // Sanity on the prediction itself: the calm market's TTR saturates at the
  // window, the spiky market's is far shorter.
  const double calm_ttr = policy.predicted_ttr_hours(
      provider_->market(kAway).price_trace(), 0.06, kHorizon);
  const double spiky_ttr = policy.predicted_ttr_hours(
      provider_->market(kHome).price_trace(), 0.06, kHorizon);
  EXPECT_GT(calm_ttr, spiky_ttr);
  EXPECT_GT(spiky_ttr, 0.0);
}

TEST_F(PolicyZooTest, RevocationAwareTieFallsBackToEffectivePrice) {
  build({{0, 0.03}}, {{kAway, {{0, 0.02}}}});  // both calm at the bid
  const SchedulerConfig cfg = multi_region(reactive_config(kHome));
  const RevocationAwarePolicy policy;
  const auto placement = policy.choose_spot(*provider_, cfg, query_at(kHorizon));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->market, kAway);  // cheaper of the tied pair
}

TEST_F(PolicyZooTest, RevocationAwareWithNoHistoryRanksByPrice) {
  build({{0, 0.03}}, {{kAway, {{0, 0.02}}}});
  const SchedulerConfig cfg = multi_region(reactive_config(kHome));
  const RevocationAwarePolicy policy;
  // At t=0 no market has min_history of committed prices: TTR is 0 for all.
  const auto placement = policy.choose_spot(*provider_, cfg, query_at(0));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->market, kAway);
}

// ---------------------------------------------------------------------------
// PortfolioPlacementPolicy
// ---------------------------------------------------------------------------

TEST_F(PolicyZooTest, PortfolioHonorsExcludeAvoidAndCeiling) {
  build({{0, 0.02}}, {{kAway, {{0, 0.03}}}});
  const SchedulerConfig cfg = multi_region(proactive_config(kHome));
  const PortfolioPlacementPolicy policy;

  PlacementQuery q = query_at(kHorizon);
  q.exclude = kHome;
  auto placement = policy.choose_spot(*provider_, cfg, q);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->market, kAway);

  q.avoid = {kAway};
  EXPECT_FALSE(policy.choose_spot(*provider_, cfg, q).has_value());

  PlacementQuery priced_out = query_at(kHorizon);
  priced_out.max_effective_price = 0.01;  // nothing qualifies
  EXPECT_FALSE(policy.choose_spot(*provider_, cfg, priced_out).has_value());
}

TEST_F(PolicyZooTest, PortfolioRotatesAcrossBasketDeterministically) {
  build({{0, 0.02}}, {{kAway, {{0, 0.02}}}});  // equal price, equal calm
  SchedulerConfig cfg = multi_region(proactive_config(kHome));
  const PortfolioPlacementPolicy policy;

  std::set<std::string> seen;
  for (int slot = 0; slot < 12; ++slot) {
    const auto q = query_at(kDay + slot * kHour);
    const auto a = policy.choose_spot(*provider_, cfg, q);
    const auto b = policy.choose_spot(*provider_, cfg, q);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->market, b->market);  // same instant => same choice
    seen.insert(a->market.str());
  }
  // Equal weights: the golden-ratio rotation must visit both markets.
  EXPECT_EQ(seen.size(), 2u);

  // The fleet salt shifts the schedule but stays deterministic.
  SchedulerConfig salted = cfg;
  salted.placement_salt = 1;
  std::set<std::string> salted_seen;
  for (int slot = 0; slot < 12; ++slot) {
    const auto q = query_at(kDay + slot * kHour);
    salted_seen.insert(policy.choose_spot(*provider_, salted, q)->market.str());
  }
  EXPECT_EQ(salted_seen.size(), 2u);
}

TEST_F(PolicyZooTest, PortfolioPrefersStableMarketInBasketWeighting) {
  // kAway jitters hard; home is flat. With basket_size 1 the basket keeps
  // only the highest-weight (most stable) market.
  std::vector<Step> noisy;
  for (sim::SimTime t = 0; t < kHorizon; t += 2 * kHour) {
    noisy.push_back({t, 0.015});
    noisy.push_back({t + kHour, 0.055});
  }
  build({{0, 0.03}}, {{kAway, std::move(noisy)}});
  const SchedulerConfig cfg = multi_region(proactive_config(kHome));
  const PortfolioPlacementPolicy policy{{.basket_size = 1}};
  for (int slot = 0; slot < 8; ++slot) {
    const auto placement =
        policy.choose_spot(*provider_, cfg, query_at(kDay + slot * kHour));
    ASSERT_TRUE(placement.has_value());
    EXPECT_EQ(placement->market, kHome);  // stable beats cheap-but-noisy
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism and seam transparency
// ---------------------------------------------------------------------------

Scenario zoo_scenario() {
  Scenario scenario;
  scenario.seed = 20150615;
  scenario.horizon = 5 * kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};
  scenario.sizes = {InstanceSize::kSmall, InstanceSize::kLarge};
  return scenario;
}

std::string run_jsonl(const Scenario& scenario, const SchedulerConfig& cfg) {
  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  (void)metrics::run_hosting_scenario(scenario, cfg, &tracer, nullptr);
  return os.str();
}

TEST(PolicyZooDeterminism, SameSeedJsonlIsByteIdenticalPerPolicy) {
  const Scenario scenario = zoo_scenario();
  auto base = proactive_config({"us-east-1a", InstanceSize::kSmall});
  base.scope = MarketScope::kMultiRegion;

  auto portfolio = base;
  portfolio.placement = std::make_shared<const PortfolioPlacementPolicy>();
  auto revocation = reactive_config({"us-east-1a", InstanceSize::kSmall});
  revocation.scope = MarketScope::kMultiRegion;
  revocation.placement = std::make_shared<const RevocationAwarePolicy>();
  auto forecast = base;
  forecast.bidding = std::make_shared<const ForecastBidPolicy>();

  for (const auto& cfg : {portfolio, revocation, forecast}) {
    const std::string first = run_jsonl(scenario, cfg);
    const std::string second = run_jsonl(scenario, cfg);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
  }
}

// The golden-trace guard proper lives in tests/integration/test_trace_golden
// (the pinned hash cannot move); this pins the complementary property — the
// new seam and zoo cost zero RNG draws and zero trace events when not
// selected, so explicitly selecting the default strategy (and constructing
// unused zoo policies on the side) is byte-identical to the null config.
TEST(PolicyZooDeterminism, UnselectedPoliciesLeaveDefaultRunsByteIdentical) {
  const Scenario scenario = zoo_scenario();
  for (auto base : {proactive_config({"us-east-1a", InstanceSize::kSmall}),
                    reactive_config({"us-east-1a", InstanceSize::kSmall})}) {
    base.scope = MarketScope::kMultiRegion;
    const std::string plain = run_jsonl(scenario, base);

    const PortfolioPlacementPolicy unused_portfolio;
    const RevocationAwarePolicy unused_revocation;
    const ForecastBidPolicy unused_forecast;
    auto explicit_static = base;
    explicit_static.bidding = std::make_shared<const StaticBidStrategy>();
    const std::string seamed = run_jsonl(scenario, explicit_static);

    EXPECT_EQ(plain, seamed);
  }
}

// Frontier sanity for the bench: every policy beats all-on-demand on cost,
// stays highly available, and the sweep is execution-order independent.
TEST(PolicyZooFrontier, SmallSweepIsSaneAndExecutionIndependent) {
  const Scenario scenario = zoo_scenario();
  auto base = proactive_config({"us-east-1a", InstanceSize::kSmall});
  base.scope = MarketScope::kMultiRegion;

  auto arms = [&](metrics::Execution execution) {
    metrics::SweepRunner sweep(2, 20150615, execution);
    auto reactive = base;
    reactive.bid = {.mode = BiddingMode::kReactive};
    sweep.add_arm("reactive", scenario, reactive);
    sweep.add_arm("proactive", scenario, base);
    auto portfolio = base;
    portfolio.placement = std::make_shared<const PortfolioPlacementPolicy>();
    sweep.add_arm("portfolio", scenario, portfolio);
    auto revocation = reactive;
    revocation.placement = std::make_shared<const RevocationAwarePolicy>();
    sweep.add_arm("revocation-aware", scenario, revocation);
    auto forecast = base;
    forecast.bidding = std::make_shared<const ForecastBidPolicy>();
    sweep.add_arm("forecast-bid", scenario, forecast);
    return sweep.run_all();
  };

  const auto parallel = arms(metrics::Execution::kParallel);
  const auto serial = arms(metrics::Execution::kSerial);
  ASSERT_EQ(parallel.size(), 5u);
  for (std::size_t a = 0; a < parallel.size(); ++a) {
    EXPECT_GT(parallel[a].normalized_cost_pct.mean, 0.0);
    EXPECT_LT(parallel[a].normalized_cost_pct.mean, 100.0);
    EXPECT_LT(parallel[a].unavailability_pct.mean, 5.0);
    ASSERT_EQ(parallel[a].per_run.size(), serial[a].per_run.size());
    for (std::size_t r = 0; r < parallel[a].per_run.size(); ++r) {
      EXPECT_EQ(parallel[a].per_run[r].total_cost,
                serial[a].per_run[r].total_cost);
      EXPECT_EQ(parallel[a].per_run[r].unavailability_pct,
                serial[a].per_run[r].unavailability_pct);
    }
  }
}

}  // namespace
}  // namespace spothost::sched
