// Scheduler behaviour tests on hand-built deterministic worlds: fixed step
// traces, zero-CV allocation latencies, zero timing jitter. Every scenario
// checks the migration class the paper's Sec. 3.1 rules prescribe.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "cloud/billing.hpp"
#include "sched/baselines.hpp"
#include "simcore/simulation.hpp"
#include "workload/service.hpp"

namespace spothost::sched {
namespace {

using cloud::BillingMode;
using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};
constexpr sim::SimTime kHorizon = 2 * kDay;

struct Step {
  sim::SimTime at;
  double price;
};

class SchedulerTest : public ::testing::Test {
 protected:
  void build(std::vector<Step> home_steps,
             std::vector<std::pair<MarketId, std::vector<Step>>> extra = {}) {
    rng_ = std::make_unique<sim::RngFactory>(99);
    sim_ = std::make_unique<sim::Simulation>();
    provider_ = std::make_unique<cloud::CloudProvider>(*sim_, *rng_);
    add_market(kHome, std::move(home_steps), 0.06);
    for (auto& [market, steps] : extra) {
      add_market(market, std::move(steps),
                 cloud::on_demand_price(market.size, market.region));
    }
    cloud::AllocationLatency lat;
    lat.on_demand_mean_s = 95.0;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 240.0;
    lat.spot_cv = 0.0;
    provider_->set_allocation_latency("us-east-1a", lat);
    provider_->start();
    service_ = std::make_unique<workload::AlwaysOnService>(
        "svc", virt::default_spec_for_memory(1.7, 8.0));
  }

  void add_market(const MarketId& market, std::vector<Step> steps, double od) {
    trace::PriceTrace t;
    for (const auto& s : steps) t.append(s.at, s.price);
    t.set_end(kHorizon);
    provider_->add_market(market, std::move(t), od);
  }

  void run_with(SchedulerConfig cfg, sim::SimTime until = kHorizon,
                bool finalize = true) {
    cfg.timing_jitter_cv = 0.0;
    scheduler_ = std::make_unique<CloudScheduler>(*sim_, *provider_, *service_,
                                                  cfg, rng_->stream("timing"));
    scheduler_->start();
    sim_->run_until(until);
    if (finalize) {
      provider_->finalize(until);
      scheduler_->finalize(until);
    }
  }

  std::unique_ptr<sim::RngFactory> rng_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<workload::AlwaysOnService> service_;
  std::unique_ptr<CloudScheduler> scheduler_;
};

TEST_F(SchedulerTest, CalmMarketStaysOnSpotForever) {
  build({{0, 0.02}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  EXPECT_EQ(scheduler_->stats().forced, 0);
  EXPECT_EQ(scheduler_->stats().planned, 0);
  EXPECT_EQ(scheduler_->stats().reverse, 0);
  EXPECT_DOUBLE_EQ(service_->availability().unavailability(), 0.0);
  // Only spot money was spent.
  EXPECT_DOUBLE_EQ(provider_->ledger().total_cost(BillingMode::kOnDemand), 0.0);
  EXPECT_GT(provider_->ledger().total_cost(BillingMode::kSpot), 0.0);
}

TEST_F(SchedulerTest, CalmMarketCostIsSpotHours) {
  build({{0, 0.02}});
  run_with(proactive_config(kHome));
  // Spot instance launches at 240 s and runs to the horizon: 48 started
  // instance-hours at 0.02.
  EXPECT_NEAR(provider_->ledger().total_cost(), 48 * 0.02, 1e-9);
}

TEST_F(SchedulerTest, ReactiveCrossingIsForced) {
  // Spike above p_on from 5h to 8h.
  build({{0, 0.02}, {5 * kHour, 0.10}, {8 * kHour, 0.02}});
  run_with(reactive_config(kHome));
  EXPECT_EQ(scheduler_->stats().forced, 1);
  EXPECT_EQ(scheduler_->stats().planned, 0);
  EXPECT_EQ(scheduler_->stats().reverse, 1);  // back to spot after the spike
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  EXPECT_GT(service_->availability().total_downtime(), 0);
  EXPECT_EQ(service_->outage_count(workload::OutageCause::kForcedMigration), 1);
}

TEST_F(SchedulerTest, ReactiveForcedDowntimeIsFlushPlusLazyRestore) {
  build({{0, 0.02}, {5 * kHour, 0.10}, {8 * kHour, 0.02}});
  run_with(reactive_config(kHome));  // default combo: CKPT LR + Live
  // Flush <= 10 s bound; on-demand (95 s) beats the 120 s grace; lazy
  // restore adds 20 s. Downtime = flush + restore ~ 30 s.
  const double downtime = sim::to_seconds(service_->availability().total_downtime());
  EXPECT_GT(downtime, 25.0);
  EXPECT_LT(downtime, 40.0);
}

TEST_F(SchedulerTest, ProactiveModerateSpikeIsPlanned) {
  // 0.10 is above p_on (0.06) but below the 4x bid (0.24): voluntary move.
  build({{0, 0.02}, {5 * kHour, 0.10}, {8 * kHour, 0.02}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->stats().forced, 0);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().reverse, 1);
  // Live migration keeps the outage sub-second per move.
  EXPECT_LT(sim::to_seconds(service_->availability().total_downtime()), 5.0);
}

TEST_F(SchedulerTest, ProactiveBeatsReactiveOnDowntime) {
  const std::vector<Step> steps{{0, 0.02}, {5 * kHour, 0.10}, {8 * kHour, 0.02}};
  build(steps);
  run_with(proactive_config(kHome));
  const auto proactive_down = service_->availability().total_downtime();
  build(steps);
  run_with(reactive_config(kHome));
  const auto reactive_down = service_->availability().total_downtime();
  EXPECT_LT(proactive_down, reactive_down / 2);
}

TEST_F(SchedulerTest, ProactiveSharpSpikeIsForced) {
  // Straight past the 4x bid (0.24): no time for a voluntary move.
  build({{0, 0.02}, {5 * kHour, 0.50}, {8 * kHour, 0.02}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->stats().forced, 1);
  EXPECT_EQ(scheduler_->stats().planned, 0);
  EXPECT_EQ(service_->outage_count(workload::OutageCause::kForcedMigration), 1);
}

TEST_F(SchedulerTest, ShortSpikeIsCancelledNotMigrated) {
  // Price pops above p_on for 80 s — shorter than the 95 s on-demand
  // allocation — then falls back. The proactive scheduler cancels.
  build({{0, 0.02}, {5 * kHour, 0.10}, {5 * kHour + 80 * kSecond, 0.02}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.planned_timing = PlannedTiming::kImmediate;
  run_with(cfg);
  EXPECT_EQ(scheduler_->stats().planned, 0);
  EXPECT_EQ(scheduler_->stats().cancelled_planned, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  EXPECT_DOUBLE_EQ(service_->availability().unavailability(), 0.0);
}

TEST_F(SchedulerTest, HourEndTimingDelaysPlannedMigration) {
  // Spike starts 5 minutes into a billing instance-hour (the spot instance
  // launched at 240 s, so its hours tick at 240s + k*3600s); with kHourEnd
  // the scheduler rides out the already-paid hour and migrates near its end.
  build({{0, 0.02}, {4 * kHour + 5 * kMinute, 0.10}, {20 * kHour, 0.02}});
  SchedulerConfig cfg = proactive_config(kHome);
  run_with(cfg, 4 * kHour + 10 * kMinute);
  EXPECT_EQ(scheduler_->stats().planned + scheduler_->stats().forced, 0);
}

TEST_F(SchedulerTest, HourEndTimingEventuallyMigrates) {
  build({{0, 0.02}, {4 * kHour + 5 * kMinute, 0.10}, {20 * kHour, 0.02}});
  run_with(proactive_config(kHome), 6 * kHour);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
}

TEST_F(SchedulerTest, ReverseMigrationWaitsForBillingHourEnd) {
  // Spike pushes the service to on-demand; price recovers 30 minutes later,
  // but the reverse move is timed to land near the on-demand instance-hour
  // boundary (~1 h after the on-demand launch), not at the price drop.
  build({{0, 0.02}, {4 * kHour, 0.10}, {4 * kHour + 30 * kMinute, 0.02}});
  run_with(proactive_config(kHome), 4 * kHour + 45 * kMinute, /*finalize=*/false);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().reverse, 0);  // not yet: mid billing hour
  // Continue the same world past the boundary: reverse done.
  sim_->run_until(5 * kHour + 30 * kMinute);
  EXPECT_EQ(scheduler_->stats().reverse, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
}

TEST_F(SchedulerTest, MultiMarketPlannedMovesToCheaperSpot) {
  // Home (small) spikes at 5h; the large market starts expensive (so the
  // initial acquisition stays on the small box) but is cheap by the time the
  // planned migration runs, so the scheduler packs onto the large box
  // instead of falling back to on-demand.
  build({{0, 0.02}, {5 * kHour, 0.10}, {12 * kHour, 0.02}},
        {{MarketId{"us-east-1a", InstanceSize::kLarge},
          {{0, 0.30}, {4 * kHour + 30 * kMinute, 0.02}}}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.scope = MarketScope::kMultiMarket;
  run_with(cfg, 8 * kHour);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().market_switches, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  EXPECT_DOUBLE_EQ(provider_->ledger().total_cost(BillingMode::kOnDemand), 0.0);
}

TEST_F(SchedulerTest, SingleMarketPlannedFallsBackToOnDemand) {
  build({{0, 0.02}, {5 * kHour, 0.10}, {12 * kHour, 0.02}});
  run_with(proactive_config(kHome), 8 * kHour);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().market_switches, 0);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
  EXPECT_GT(provider_->ledger().total_cost(BillingMode::kOnDemand), 0.0);
}

TEST_F(SchedulerTest, PureSpotRidesOutTheSpike) {
  build({{0, 0.02}, {5 * kHour, 0.10}, {8 * kHour, 0.02}});
  run_with(pure_spot_config(kHome));
  // No on-demand fallback: the whole excursion is an outage (plus restore
  // and the ~4-minute spot reacquisition).
  const double downtime = sim::to_seconds(service_->availability().total_downtime());
  EXPECT_GT(downtime, 3.0 * 3600.0 - 150.0);
  EXPECT_LT(downtime, 3.0 * 3600.0 + 600.0);
  EXPECT_DOUBLE_EQ(provider_->ledger().total_cost(BillingMode::kOnDemand), 0.0);
  EXPECT_EQ(service_->outage_count(workload::OutageCause::kSpotLoss), 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
}

TEST_F(SchedulerTest, PureSpotNeverUpWhenMarketAlwaysAboveBid) {
  build({{0, 0.50}});
  run_with(pure_spot_config(kHome));
  EXPECT_NEAR(service_->availability().unavailability(), 1.0, 1e-9);
}

TEST_F(SchedulerTest, InitialAcquisitionPrefersOnDemandWhenSpotExpensive) {
  build({{0, 0.50}, {10 * kHour, 0.02}});
  run_with(proactive_config(kHome), 5 * kHour);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
  EXPECT_DOUBLE_EQ(provider_->ledger().total_cost(BillingMode::kSpot), 0.0);
}

TEST_F(SchedulerTest, RecoversToSpotAfterExpensiveStart) {
  build({{0, 0.50}, {10 * kHour, 0.02}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  EXPECT_EQ(scheduler_->stats().reverse, 1);
}

TEST_F(SchedulerTest, ForcedConvertsInFlightPlannedMigration) {
  // Spike to 0.10 starts a planned move (immediate timing; on-demand takes
  // 95 s); 60 s later the price blows past the bid. The scheduler converts,
  // reusing the pending on-demand destination.
  build({{0, 0.02},
         {5 * kHour, 0.10},
         {5 * kHour + 60 * kSecond, 0.50},
         {8 * kHour, 0.02}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.planned_timing = PlannedTiming::kImmediate;
  run_with(cfg, 7 * kHour);
  EXPECT_EQ(scheduler_->stats().forced, 1);
  EXPECT_EQ(scheduler_->stats().planned, 0);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
  // Exactly one on-demand instance was provisioned (the reused destination).
  int od_count = 0;
  for (const auto& rec : provider_->ledger().records()) {
    if (rec.mode == BillingMode::kOnDemand) ++od_count;
  }
  EXPECT_EQ(od_count, 1);
}

TEST_F(SchedulerTest, RevokedPartialHourNotBilled) {
  build({{0, 0.02}, {5 * kHour, 0.50}, {8 * kHour, 0.02}});
  run_with(reactive_config(kHome), 6 * kHour);
  // Spot launch 240 s; revoked at 5h+120s. Started instance-hours: 5 (the
  // partial 5th hour is free under provider revocation).
  bool found = false;
  for (const auto& rec : provider_->ledger().records()) {
    if (rec.mode == BillingMode::kSpot &&
        rec.cause == cloud::TerminationCause::kProviderRevoked) {
      found = true;
      // Launch 240 s, revoked 5h+120s: four completed instance-hours billed,
      // the in-progress fifth hour free.
      EXPECT_DOUBLE_EQ(rec.cost, 4 * 0.02);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SchedulerTest, StatsAndConfigAccessors) {
  build({{0, 0.02}});
  SchedulerConfig cfg = proactive_config(kHome);
  run_with(cfg, kHour);
  EXPECT_EQ(scheduler_->config().home_market, kHome);
  EXPECT_GT(scheduler_->vm_spec().memory_gb, 0.0);
  EXPECT_NE(scheduler_->current_instance(), cloud::kInvalidInstance);
}

TEST_F(SchedulerTest, UnknownHomeMarketRejected) {
  build({{0, 0.02}});
  SchedulerConfig cfg =
      proactive_config(MarketId{"nowhere-1x", InstanceSize::kSmall});
  EXPECT_THROW(CloudScheduler(*sim_, *provider_, *service_, cfg,
                              rng_->stream("t")),
               std::invalid_argument);
}

TEST_F(SchedulerTest, MechanismComboOrderingOnForcedMigration) {
  // One sharp spike; downtime must rank CKPT > CKPT LR >= live combos' forced
  // (live does not help forced, so CKPT ~ CKPT+Live and LR ~ LR+Live).
  const std::vector<Step> steps{{0, 0.02}, {5 * kHour, 0.50}, {8 * kHour, 0.02}};
  std::map<virt::MechanismCombo, double> downtime;
  for (const auto combo : virt::kAllCombos) {
    build(steps);
    SchedulerConfig cfg = proactive_config(kHome);
    cfg.combo = combo;
    run_with(cfg, 6 * kHour);
    downtime[combo] = sim::to_seconds(service_->availability().total_downtime());
  }
  using MC = virt::MechanismCombo;
  EXPECT_GT(downtime[MC::kCkpt], downtime[MC::kCkptLazy]);
  EXPECT_NEAR(downtime[MC::kCkpt], downtime[MC::kCkptLive], 1.0);
  EXPECT_NEAR(downtime[MC::kCkptLazy], downtime[MC::kCkptLazyLive], 1.0);
}

}  // namespace
}  // namespace spothost::sched
