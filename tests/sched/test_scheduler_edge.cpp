// Edge cases of the scheduler state machine beyond the main behaviour suite:
// hysteresis, startup-slower-than-grace forced migrations, cross-region
// planned moves, spot-grant failures, and packed-group forced migrations.
#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "sched/baselines.hpp"
#include "sched/scheduler.hpp"
#include "simcore/simulation.hpp"
#include "workload/group.hpp"
#include "workload/service.hpp"

namespace spothost::sched {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using sim::kDay;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};
constexpr sim::SimTime kHorizon = 2 * kDay;

struct Step {
  sim::SimTime at;
  double price;
};

// Same fixture style as test_scheduler.cpp, but with an endpoint injection
// hook so ServiceGroups can be driven too.
class SchedulerEdgeTest : public ::testing::Test {
 protected:
  void build(std::vector<Step> home_steps,
             std::vector<std::pair<MarketId, std::vector<Step>>> extra = {},
             double od_mean_s = 95.0) {
    rng_ = std::make_unique<sim::RngFactory>(7);
    sim_ = std::make_unique<sim::Simulation>();
    provider_ = std::make_unique<cloud::CloudProvider>(*sim_, *rng_);
    add_market(kHome, std::move(home_steps), 0.06);
    for (auto& [market, steps] : extra) {
      add_market(market, std::move(steps),
                 cloud::on_demand_price(market.size, market.region));
      cloud::AllocationLatency lat;
      lat.on_demand_mean_s = od_mean_s;
      lat.on_demand_cv = 0.0;
      lat.spot_mean_s = 240.0;
      lat.spot_cv = 0.0;
      provider_->set_allocation_latency(market.region, lat);
    }
    cloud::AllocationLatency lat;
    lat.on_demand_mean_s = od_mean_s;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 240.0;
    lat.spot_cv = 0.0;
    provider_->set_allocation_latency(kHome.region, lat);
    provider_->start();
    service_ = std::make_unique<workload::AlwaysOnService>(
        "svc", virt::default_spec_for_memory(1.7, 8.0));
  }

  void add_market(const MarketId& market, std::vector<Step> steps, double od) {
    trace::PriceTrace t;
    for (const auto& s : steps) t.append(s.at, s.price);
    t.set_end(kHorizon);
    provider_->add_market(market, std::move(t), od);
  }

  void run_with(SchedulerConfig cfg, workload::ServiceEndpoint& endpoint,
                sim::SimTime until = kHorizon) {
    cfg.timing_jitter_cv = 0.0;
    scheduler_ = std::make_unique<CloudScheduler>(*sim_, *provider_, endpoint,
                                                  cfg, rng_->stream("timing"));
    scheduler_->start();
    sim_->run_until(until);
    provider_->finalize(until);
    scheduler_->finalize(until);
  }

  void run_with(SchedulerConfig cfg, sim::SimTime until = kHorizon) {
    run_with(std::move(cfg), *service_, until);
  }

  std::unique_ptr<sim::RngFactory> rng_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<workload::AlwaysOnService> service_;
  std::unique_ptr<CloudScheduler> scheduler_;
};

TEST_F(SchedulerEdgeTest, ReverseHysteresisHoldsJustBelowOnDemand) {
  // After a spike the spot price recovers to 0.058 — below p_on (0.06) but
  // above the 0.92 margin threshold (0.0552). The scheduler must stay on
  // on-demand rather than flap back.
  build({{0, 0.02}, {4 * kHour, 0.10}, {6 * kHour, 0.058}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().reverse, 0);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
}

TEST_F(SchedulerEdgeTest, ReverseFiresOnceBelowMargin) {
  build({{0, 0.02}, {4 * kHour, 0.10}, {6 * kHour, 0.054}});
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->stats().reverse, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
}

TEST_F(SchedulerEdgeTest, SlowOnDemandStartupStretchesForcedDowntime) {
  // On-demand allocation (300 s) far exceeds the 120 s grace: the service
  // stays down from flush until the replacement arrives plus restore.
  build({{0, 0.02}, {5 * kHour, 0.50}, {8 * kHour, 0.02}}, {},
        /*od_mean_s=*/300.0);
  run_with(reactive_config(kHome), 7 * kHour);
  const double downtime = sim::to_seconds(service_->availability().total_downtime());
  // flush(10) + shortfall(300 - 120 = 180) + lazy restore(20) = 210.
  EXPECT_GT(downtime, 195.0);
  EXPECT_LT(downtime, 225.0);
}

TEST_F(SchedulerEdgeTest, MultiRegionPlannedMovesAcrossRegions) {
  // Home spikes; the only cheap market is in another region family. The
  // planned migration must land there (WAN disk copy and all) with no
  // service downtime beyond the live-migration blip.
  build({{0, 0.02}, {5 * kHour, 0.10}, {40 * kHour, 0.02}},
        {{MarketId{"eu-west-1a", InstanceSize::kSmall}, {{0, 0.02}}}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.scope = MarketScope::kMultiRegion;
  cfg.allowed_regions = {"us-east-1a", "eu-west-1a"};
  run_with(cfg, 10 * kHour);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  EXPECT_EQ(scheduler_->stats().market_switches, 1);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
  // The us-east -> eu-west link (~29.5 MB/s) barely outruns the guest's
  // 30 MB/s dirty rate, so pre-copy cannot converge and live migration
  // falls back to a working-set stop-copy: ~15 s of downtime — still far
  // below a suspend/resume move, but not the LAN sub-second blip.
  EXPECT_LT(sim::to_seconds(service_->availability().total_downtime()), 30.0);
}

TEST_F(SchedulerEdgeTest, OnDemandStaysPutWhileSpotRemainsExpensive) {
  build({{0, 0.50}});  // never cheap
  run_with(proactive_config(kHome));
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnDemand);
  EXPECT_EQ(scheduler_->stats().reverse, 0);
  EXPECT_DOUBLE_EQ(service_->availability().unavailability(), 0.0);
  // Paying the on-demand price the whole horizon: normalized cost ~100%.
  EXPECT_NEAR(provider_->ledger().total_cost(), 0.06 * 48, 0.061);
}

TEST_F(SchedulerEdgeTest, ReverseSpotGrantFailureRetriesNextHour) {
  // The spot price dips below the margin long enough for the hour check
  // (~4h54m, lead before the on-demand instance-hour boundary) to start a
  // reverse move, but jumps past the 4x bid during the ~4-minute spot
  // allocation — the grant is rejected, and the scheduler retries at a
  // later hour check once the market calms.
  build({{0, 0.02},
         {4 * kHour, 0.10},                 // planned -> on-demand (~4h02m)
         {4 * kHour + 50 * kMinute, 0.02},  // dip: reverse attempt at ~4h54m
         {4 * kHour + 56 * kMinute, 0.30},  // above bid when the grant lands
         {7 * kHour, 0.02}});               // calm again
  run_with(proactive_config(kHome), 9 * kHour);
  EXPECT_GE(scheduler_->stats().spot_request_failures, 1);
  EXPECT_EQ(scheduler_->stats().reverse, 1);  // succeeded on a later check
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
}

TEST_F(SchedulerEdgeTest, PackedGroupForcedMigrationHitsAllTenants) {
  // A 4-unit group needs a large box; the large market takes the spike
  // (2.0 > 4 x 0.24 bid). The home small market stays calm and irrelevant.
  const MarketId large{"us-east-1a", InstanceSize::kLarge};
  build({{0, 0.02}},
        {{large, {{0, 0.02}, {5 * kHour, 2.0}, {8 * kHour, 0.02}}}});
  workload::ServiceGroup group("tenant", 4,
                               virt::default_spec_for_memory(0.4, 2.0));
  SchedulerConfig cfg = proactive_config(large);
  cfg.capacity_units_override = group.size();
  cfg.vm_spec = group.aggregate_spec();
  run_with(cfg, group, 7 * kHour);
  EXPECT_EQ(scheduler_->stats().forced, 1);
  for (int i = 0; i < group.size(); ++i) {
    EXPECT_EQ(group.member(i).outage_count(workload::OutageCause::kForcedMigration),
              1)
        << i;
    EXPECT_GT(group.member(i).availability().total_downtime(), 0) << i;
  }
}

TEST_F(SchedulerEdgeTest, CkptCombosPayDowntimeOnPlannedMigrations) {
  // Without live migration, even voluntary moves suspend the service.
  build({{0, 0.02}, {5 * kHour, 0.10}, {12 * kHour, 0.02}});
  SchedulerConfig cfg = proactive_config(kHome);
  cfg.combo = virt::MechanismCombo::kCkptLazy;
  run_with(cfg, 8 * kHour);
  EXPECT_EQ(scheduler_->stats().planned, 1);
  const double downtime = sim::to_seconds(service_->availability().total_downtime());
  // flush (<= 10 s) + lazy resume (20 s).
  EXPECT_GT(downtime, 20.0);
  EXPECT_LT(downtime, 40.0);
  // Lazy restore leaves a degraded window behind.
  EXPECT_GT(service_->availability().total_degraded(), 0);
}

TEST_F(SchedulerEdgeTest, FinalizeWithServiceNeverLiveBooksFullOutage) {
  build({{0, 0.50}});
  run_with(pure_spot_config(kHome), 6 * kHour);
  EXPECT_NEAR(service_->availability().unavailability(), 1.0, 1e-9);
  EXPECT_EQ(service_->availability().outage_count(), 1u);
}

TEST_F(SchedulerEdgeTest, BackToBackSpikesEachHandledOnce) {
  build({{0, 0.02},
         {5 * kHour, 0.50},
         {6 * kHour, 0.02},
         {9 * kHour, 0.50},
         {10 * kHour, 0.02}});
  run_with(proactive_config(kHome), 14 * kHour);
  EXPECT_EQ(scheduler_->stats().forced, 2);
  EXPECT_EQ(scheduler_->stats().reverse, 2);
  EXPECT_EQ(service_->outage_count(workload::OutageCause::kForcedMigration), 2);
  EXPECT_EQ(scheduler_->state(), CloudScheduler::State::kOnSpot);
}

}  // namespace
}  // namespace spothost::sched
