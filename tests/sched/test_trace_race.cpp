// Concurrency stress for the shared-trace contract: one TraceCache and one
// MarketTraceSet hammered from every pool thread at once.
//
// PriceTrace's const queries must be pure reads (per-reader state lives in
// caller-owned trace::PriceCursors), so a memoized set can be queried in
// place by concurrent sweep cells. These tests are the teeth of that claim:
// run them under ThreadSanitizer (SPOTHOST_SANITIZE=thread — the TSan CI
// job does) and any regression back toward a mutable cursor inside
// PriceTrace shows up as a reported data race. Without TSan they still
// assert that every thread computes bit-identical statistics off the shared
// set, which a racing cursor makes probabilistically false.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "exec/thread_pool.hpp"
#include "sched/market_traces.hpp"
#include "trace/stats.hpp"

namespace spothost::sched {
namespace {

using sim::kDay;
using sim::kMinute;

Scenario stress_scenario(std::uint64_t seed = 4242) {
  Scenario s;
  s.seed = seed;
  s.horizon = 3 * kDay;
  s.regions = {"us-east-1a", "us-west-1a"};
  return s;
}

// One reader's full pass over the shared set: monotone point lookups with a
// private cursor, every interval statistic, next-change scheduling lookups,
// cursorless lookups, and a cross-market correlation. Returns a checksum so
// concurrent readers can be compared bit-for-bit.
double hammer(const MarketTraceSet& traces) {
  double sum = 0.0;
  for (const auto& entry : traces.markets()) {
    const trace::PriceTrace& t = entry.prices;
    const sim::SimTime from = t.start();
    const sim::SimTime to = t.end();

    trace::PriceCursor cursor;
    for (sim::SimTime q = from; q < to; q += 7 * kMinute) {
      sum += t.price_at(q, cursor);
    }
    if (const auto next = t.next_change_after(from, cursor)) sum += next->price;

    sum += t.time_average(from, to);
    sum += t.fraction_below(entry.on_demand, from, to);
    sum += t.min_price(from, to) + t.max_price(from, to);
    sum += t.price_at(to - 1);  // cursorless, far from the cursor's position

    const auto grid = t.sample(from, to, 11 * kMinute);
    sum += grid.front() + grid.back();
  }
  sum += trace::trace_correlation(traces.markets().front().prices,
                                  traces.markets().back().prices);
  return sum;
}

TEST(TraceRaceStress, SharedSetQueriedFromAllPoolThreads) {
  const auto traces = MarketTraceSet::generate(stress_scenario());
  const double expected = hammer(*traces);  // serial reference pass

  exec::ThreadPool pool(8);
  std::vector<std::future<double>> results;
  results.reserve(32);
  for (int i = 0; i < 32; ++i) {
    results.push_back(pool.submit([&traces] { return hammer(*traces); }));
  }
  for (auto& r : results) {
    EXPECT_DOUBLE_EQ(r.get(), expected);
  }
}

TEST(TraceRaceStress, TraceCacheAndSharedSetsHammeredTogether) {
  TraceCache cache;
  exec::ThreadPool pool(8);

  // Two distinct keys: every task both races the cache's memoization (get)
  // and the resulting shared sets (hammer), interleaved across threads.
  struct Outcome {
    const MarketTraceSet* set;
    double checksum;
  };
  std::vector<std::future<Outcome>> results;
  results.reserve(32);
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t seed = 4242 + static_cast<std::uint64_t>(i % 2);
    results.push_back(pool.submit([&cache, seed] {
      const auto set = cache.get(stress_scenario(seed));
      return Outcome{set.get(), hammer(*set)};
    }));
  }

  const MarketTraceSet* sets[2] = {nullptr, nullptr};
  double checksums[2] = {0.0, 0.0};
  for (int i = 0; i < 32; ++i) {
    const Outcome o = results[static_cast<std::size_t>(i)].get();
    const int k = i % 2;
    if (sets[k] == nullptr) {
      sets[k] = o.set;
      checksums[k] = o.checksum;
    }
    // One generation per key: every task saw the same shared instance and
    // computed the same statistics off it.
    EXPECT_EQ(o.set, sets[k]);
    EXPECT_DOUBLE_EQ(o.checksum, checksums[k]);
  }
  EXPECT_NE(sets[0], sets[1]);
  EXPECT_EQ(cache.generations(), 2u);
  EXPECT_EQ(cache.hits(), 30u);
}

}  // namespace
}  // namespace spothost::sched
