// sim::Callback: the move-only small-buffer callable behind every scheduled
// event. Size, inline/heap placement, move semantics, and prompt capture
// destruction are all contracts the event queues rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "simcore/callback.hpp"

namespace spothost::sim {
namespace {

TEST(Callback, SizeMatchesStdFunctionBudget) {
  // One cache-line EventArena slot depends on this (see event_arena.hpp).
  static_assert(sizeof(Callback) == 32);
  static_assert(alignof(Callback) >= alignof(void*));
}

TEST(Callback, EmptyAndNullBehave) {
  Callback cb;
  EXPECT_FALSE(cb);
  Callback null_cb = nullptr;
  EXPECT_FALSE(null_cb);
  cb = [] {};
  EXPECT_TRUE(cb);
  cb = nullptr;
  EXPECT_FALSE(cb);
}

TEST(Callback, HotCaptureShapesStayInline) {
  // The three shapes every hot scheduling site uses.
  struct Wide {
    void* self;
    std::uint64_t a;
    std::uint64_t b;
    void operator()() const {}
  };
  static_assert(Callback::stores_inline<Wide>());  // 24 B: [this, PricePoint]
  auto captureless = [] {};
  auto one_ptr = [p = static_cast<void*>(nullptr)] { (void)p; };
  static_assert(Callback::stores_inline<decltype(captureless)>());
  static_assert(Callback::stores_inline<decltype(one_ptr)>());

  struct TooWide {
    std::uint64_t a, b, c, d;
    void operator()() const {}
  };
  static_assert(!Callback::stores_inline<TooWide>());  // 32 B: heap
}

TEST(Callback, InvokesInlineAndHeapTargets) {
  int hits = 0;
  Callback inline_cb = [&hits] { ++hits; };
  inline_cb();
  EXPECT_EQ(hits, 1);

  // Force the heap path with a capture past the inline budget.
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  Callback heap_cb = [&hits, a, b, c, d] { hits += static_cast<int>(a + b + c + d); };
  static_assert(!Callback::stores_inline<decltype([&hits, a, b, c, d] {
    hits += static_cast<int>(a + b + c + d);
  })>());
  heap_cb();
  EXPECT_EQ(hits, 11);
}

TEST(Callback, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  Callback a = [&hits] { ++hits; };
  Callback b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — asserting the contract
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);

  Callback c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, HoldsMoveOnlyCaptures) {
  // std::function cannot do this — it requires copyable targets.
  auto owned = std::make_unique<int>(7);
  int got = 0;
  Callback cb = [p = std::move(owned), &got] { got = *p; };
  cb();
  EXPECT_EQ(got, 7);
}

TEST(Callback, DestroysCapturePromptly) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    Callback cb = [t = std::move(token)] { (void)t; };
    EXPECT_FALSE(watch.expired());
    cb.reset();
    EXPECT_TRUE(watch.expired());  // reset destroys, not just detaches
  }

  token = std::make_shared<int>(2);
  watch = token;
  {
    Callback cb = [t = std::move(token)] { (void)t; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // destructor destroys too
}

TEST(Callback, HeapCaptureSurvivesMoves) {
  auto payload = std::make_shared<std::uint64_t>(41);
  std::weak_ptr<std::uint64_t> watch = payload;
  std::uint64_t got = 0;
  std::uint64_t pad1 = 0, pad2 = 0, pad3 = 0;
  Callback a = [p = std::move(payload), &got, pad1, pad2, pad3] {
    got = *p + 1 + pad1 + pad2 + pad3;
  };
  Callback b = std::move(a);
  Callback c = std::move(b);
  EXPECT_FALSE(watch.expired());
  c();
  EXPECT_EQ(got, 42u);
  c.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(Callback, MoveAssignReleasesPreviousTarget) {
  auto old_token = std::make_shared<int>(1);
  std::weak_ptr<int> old_watch = old_token;
  Callback cb = [t = std::move(old_token)] { (void)t; };
  cb = Callback{[] {}};
  EXPECT_TRUE(old_watch.expired());
  cb();  // the new target is live
}

TEST(Callback, ConstInvocationMatchesStdFunction) {
  int hits = 0;
  const Callback cb = [&hits] { ++hits; };
  cb();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace spothost::sim
