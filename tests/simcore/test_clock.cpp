// The sim::Clock seam and EventHandle value semantics, exercised through
// Simulation (its only production implementation). Domain code holds a
// Clock&, never a Simulation& — these tests drive everything through the
// interface to keep it honest.
#include "simcore/clock.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulation.hpp"

namespace spothost::sim {
namespace {

// What domain code looks like: schedules through the interface only.
SimTime run_one_shot(Clock& clock, SimTime delay) {
  SimTime fired_at = -1;
  clock.after(delay, [&clock, &fired_at] { fired_at = clock.now(); });
  return fired_at;  // -1 until the owner runs the simulation
}

TEST(Clock, DomainCodeSchedulesThroughInterface) {
  Simulation s;
  Clock& clock = s;
  SimTime fired_at = -1;
  clock.after(250, [&] { fired_at = clock.now(); });
  EXPECT_EQ(run_one_shot(clock, 100), -1);
  s.run_until(1000);
  EXPECT_EQ(fired_at, 250);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(EventHandle, DefaultIsInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_EQ(h.id(), kInvalidEventId);
  EXPECT_FALSE(h.cancel());  // cancelling nothing is a no-op
}

TEST(EventHandle, CancelFiresOnceAndInvalidates) {
  Simulation s;
  bool fired = false;
  EventHandle h = s.at(100, [&] { fired = true; });
  EXPECT_TRUE(h.valid());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.cancel());
  s.run_until(1000);
  EXPECT_FALSE(fired);
}

TEST(EventHandle, StaleCancelAfterFiringIsSafeNoOp) {
  Simulation s;
  EventHandle h = s.at(100, [] {});
  s.run_until(1000);
  // The event already fired; the handle is stale, not dangling.
  EXPECT_TRUE(h.valid());  // the handle cannot know — but cancel is safe
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.valid());
}

TEST(EventHandle, ResetForgetsWithoutCancelling) {
  Simulation s;
  bool fired = false;
  EventHandle h = s.at(100, [&] { fired = true; });
  h.reset();
  EXPECT_FALSE(h.valid());
  s.run_until(1000);
  EXPECT_TRUE(fired);  // reset released the handle, not the event
}

TEST(EventHandle, RescheduleReplacePattern) {
  // The idiom every periodic process uses: cancel the pending event (if
  // any), then overwrite the handle with the replacement.
  Simulation s;
  std::vector<int> fired;
  EventHandle pending = s.at(100, [&] { fired.push_back(1); });
  pending.cancel();
  pending = s.at(200, [&] { fired.push_back(2); });
  s.run_until(1000);
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventHandle, CopiesShareTheUnderlyingEvent) {
  Simulation s;
  bool fired = false;
  EventHandle a = s.at(100, [&] { fired = true; });
  EventHandle b = a;
  EXPECT_TRUE(b.cancel());
  EXPECT_FALSE(a.cancel());  // generation check: already cancelled via b
  s.run_until(1000);
  EXPECT_FALSE(fired);
}

TEST(Clock, HandlesWorkAcrossBackends) {
  for (const auto backend :
       {QueueBackend::kBinaryHeap, QueueBackend::kTimingWheel}) {
    Simulation s(backend);
    bool fired = false;
    EventHandle h = s.after(50, [&] { fired = true; });
    EXPECT_TRUE(h.cancel());
    s.run_until(500);
    EXPECT_FALSE(fired) << to_string(backend);
    EXPECT_EQ(s.backend(), backend);
  }
}

}  // namespace
}  // namespace spothost::sim
