// Backend-agnostic EventQueue contract tests, run against every backend via
// make_event_queue — plus heap-only compaction tests pinned to
// BinaryHeapQueue (compaction is a lazy-cancel implementation detail the
// timing wheel does not have).
#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace spothost::sim {
namespace {

class EventQueueContract : public ::testing::TestWithParam<QueueBackend> {
 protected:
  EventQueueContract() : q_(*(owned_ = make_event_queue(GetParam()))) {}

  std::unique_ptr<EventQueue> owned_;
  EventQueue& q_;
};

INSTANTIATE_TEST_SUITE_P(AllBackends, EventQueueContract,
                         ::testing::Values(QueueBackend::kBinaryHeap,
                                           QueueBackend::kTimingWheel),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "wheel"
                                      ? "Wheel"
                                      : "Heap";
                         });

TEST_P(EventQueueContract, StartsEmpty) {
  EXPECT_TRUE(q_.empty());
  EXPECT_EQ(q_.size(), 0u);
}

TEST_P(EventQueueContract, ReportsBackend) {
  EXPECT_EQ(q_.backend(), GetParam());
}

TEST_P(EventQueueContract, PopsInTimeOrder) {
  std::vector<int> fired;
  q_.schedule(300, [&] { fired.push_back(3); });
  q_.schedule(100, [&] { fired.push_back(1); });
  q_.schedule(200, [&] { fired.push_back(2); });
  while (!q_.empty()) q_.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueContract, EqualTimestampsFireFifo) {
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q_.schedule(500, [&fired, i] { fired.push_back(i); });
  }
  while (!q_.empty()) q_.pop().callback();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST_P(EventQueueContract, CancelPreventsFiring) {
  bool fired = false;
  const EventId id = q_.schedule(100, [&] { fired = true; });
  EXPECT_TRUE(q_.cancel(id));
  EXPECT_TRUE(q_.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueContract, CancelTwiceReturnsFalse) {
  const EventId id = q_.schedule(100, [] {});
  EXPECT_TRUE(q_.cancel(id));
  EXPECT_FALSE(q_.cancel(id));
}

TEST_P(EventQueueContract, CancelUnknownIdReturnsFalse) {
  EXPECT_FALSE(q_.cancel(12345));
}

TEST_P(EventQueueContract, CancelledEventSkippedOnPop) {
  std::vector<int> fired;
  q_.schedule(100, [&] { fired.push_back(1); });
  const EventId mid = q_.schedule(200, [&] { fired.push_back(2); });
  q_.schedule(300, [&] { fired.push_back(3); });
  q_.cancel(mid);
  EXPECT_EQ(q_.size(), 2u);
  while (!q_.empty()) q_.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST_P(EventQueueContract, NextTimeSkipsCancelledHead) {
  const EventId head = q_.schedule(100, [] {});
  q_.schedule(200, [] {});
  q_.cancel(head);
  EXPECT_EQ(q_.next_time(), 200);
}

TEST_P(EventQueueContract, PopReturnsTimeAndId) {
  const EventId id = q_.schedule(42, [] {});
  const auto fired = q_.pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST_P(EventQueueContract, PopMovesCallbackOutOfStorage) {
  // The fired callback must survive clear(): pop() transfers ownership out
  // of queue storage rather than aliasing it.
  auto token = std::make_shared<int>(7);
  q_.schedule(10, [token] { *token += 1; });
  auto fired = q_.pop();
  q_.clear();
  EXPECT_EQ(token.use_count(), 2);  // local + the moved-out callback
  fired.callback();
  EXPECT_EQ(*token, 8);
}

TEST_P(EventQueueContract, ClearDropsEverything) {
  q_.schedule(1, [] {});
  q_.schedule(2, [] {});
  q_.clear();
  EXPECT_TRUE(q_.empty());
}

TEST_P(EventQueueContract, CancelAfterClearReturnsFalse) {
  const EventId id = q_.schedule(1, [] {});
  q_.clear();
  EXPECT_FALSE(q_.cancel(id));
}

TEST_P(EventQueueContract, IdsAreUniqueAndNonZero) {
  const EventId a = q_.schedule(1, [] {});
  const EventId b = q_.schedule(1, [] {});
  EXPECT_NE(a, kInvalidEventId);
  EXPECT_NE(b, kInvalidEventId);
  EXPECT_NE(a, b);
}

TEST_P(EventQueueContract, ManyEventsStressOrdering) {
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t state = 99;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q_.schedule(static_cast<SimTime>(state % 100000), [] {});
  }
  SimTime last = -1;
  while (!q_.empty()) {
    const auto fired = q_.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

TEST_P(EventQueueContract, InterleavedPopAndSchedule) {
  // Pop some events, then keep scheduling at/after the current frontier —
  // the pattern every live simulation produces.
  std::vector<SimTime> fired;
  for (int i = 0; i < 8; ++i) {
    q_.schedule(static_cast<SimTime>(i * 10), [] {});
  }
  for (int i = 0; i < 4; ++i) fired.push_back(q_.pop().time);
  q_.schedule(35, [] {});  // between the frontier (30) and the next (40)
  q_.schedule(30, [] {});  // exactly at the frontier
  while (!q_.empty()) fired.push_back(q_.pop().time);
  EXPECT_EQ(fired,
            (std::vector<SimTime>{0, 10, 20, 30, 30, 35, 40, 50, 60, 70}));
}

TEST_P(EventQueueContract, PopDueRespectsHorizon) {
  q_.schedule(10, [] {});
  q_.schedule(20, [] {});
  q_.schedule(20, [] {});
  q_.schedule(30, [] {});

  EventQueue::Fired fired;
  // Nothing due before the first event.
  EXPECT_FALSE(q_.pop_due(9, fired));
  EXPECT_EQ(q_.size(), 4u);
  // Everything at or before the horizon pops, in (time, FIFO) order.
  std::vector<SimTime> times;
  while (q_.pop_due(20, fired)) times.push_back(fired.time);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 20}));
  // The event past the horizon is untouched...
  EXPECT_EQ(q_.size(), 1u);
  EXPECT_FALSE(q_.pop_due(29, fired));
  // ...and pops once the horizon reaches it.
  ASSERT_TRUE(q_.pop_due(30, fired));
  EXPECT_EQ(fired.time, 30);
  EXPECT_TRUE(q_.empty());
}

TEST_P(EventQueueContract, PopDueOnEmptyQueueReturnsFalse) {
  EventQueue::Fired fired;
  EXPECT_FALSE(
      q_.pop_due(std::numeric_limits<SimTime>::max(), fired));
}

TEST_P(EventQueueContract, PopDueSkipsCancelledEvents) {
  const EventId early = q_.schedule(5, [] {});
  q_.schedule(15, [] {});
  ASSERT_TRUE(q_.cancel(early));

  EventQueue::Fired fired;
  EXPECT_FALSE(q_.pop_due(10, fired));  // only the cancelled event was due
  ASSERT_TRUE(q_.pop_due(15, fired));
  EXPECT_EQ(fired.time, 15);
}

// ---------------------------------------------------------------------------
// BinaryHeapQueue-specific: lazy-cancel compaction behaviour.

TEST(BinaryHeapQueue, CompactionBoundsHeapWhenCancellationsDominate) {
  BinaryHeapQueue q;
  std::vector<EventId> ids;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  // Cancel all but the last 100: without compaction the heap would keep all
  // 10000 entries until they surfaced at the top.
  for (std::size_t i = 0; i + 100 < ids.size(); ++i) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_LE(q.heap_entries(), 2 * q.size());
}

TEST(BinaryHeapQueue, TinyQueuesNeverPayForCompaction) {
  // Below the compaction floor, cancelled entries may linger: cancelling 9
  // of 10 events must not shrink the heap (no O(n) rebuild for small n).
  BinaryHeapQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (int i = 0; i < 9; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.heap_entries(), 10u);
}

TEST(BinaryHeapQueue, PopOrderSurvivesCompaction) {
  // Interleave keepers and victims at equal timestamps so FIFO tie-breaking
  // is observable, cancel enough to trigger a rebuild, then verify pops
  // arrive in exactly the original schedule order.
  BinaryHeapQueue q;
  std::vector<EventId> victims;
  std::vector<EventId> keepers;
  for (int i = 0; i < 200; ++i) {
    const SimTime at = static_cast<SimTime>(i / 4);  // four events per tick
    const EventId id = q.schedule(at, [] {});
    if (i % 8 == 0) {
      keepers.push_back(id);
    } else {
      victims.push_back(id);
    }
  }
  for (const EventId id : victims) q.cancel(id);
  EXPECT_EQ(q.size(), keepers.size());
  EXPECT_LE(q.heap_entries(), 2 * keepers.size());

  SimTime last_time = -1;
  std::size_t next_keeper = 0;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last_time);
    last_time = fired.time;
    ASSERT_LT(next_keeper, keepers.size());
    EXPECT_EQ(fired.id, keepers[next_keeper]);  // FIFO among equal times
    ++next_keeper;
  }
  EXPECT_EQ(next_keeper, keepers.size());
}

TEST(BinaryHeapQueue, SchedulingStaysLiveAfterCompaction) {
  BinaryHeapQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (std::size_t i = 0; i < 900; ++i) q.cancel(ids[i]);
  EXPECT_LE(q.heap_entries(), 2 * q.size());
  // The queue keeps working normally after the rebuild.
  bool fired = false;
  q.schedule(0, [&] { fired = true; });
  const auto front = q.pop();
  front.callback();
  EXPECT_TRUE(fired);
  EXPECT_EQ(front.time, 0);
}

TEST(EventQueueFactory, DefaultBackendIsWheel) {
  // SPOTHOST_EVENT_QUEUE is unset in CI; the default must be the wheel.
  if (std::getenv("SPOTHOST_EVENT_QUEUE") != nullptr) {
    GTEST_SKIP() << "SPOTHOST_EVENT_QUEUE overrides the default";
  }
  EXPECT_EQ(default_queue_backend(), QueueBackend::kTimingWheel);
}

TEST(EventQueueFactory, MakesRequestedBackend) {
  EXPECT_EQ(make_event_queue(QueueBackend::kBinaryHeap)->backend(),
            QueueBackend::kBinaryHeap);
  EXPECT_EQ(make_event_queue(QueueBackend::kTimingWheel)->backend(),
            QueueBackend::kTimingWheel);
}

}  // namespace
}  // namespace spothost::sim
