#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spothost::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(300, [&] { fired.push_back(3); });
  q.schedule(100, [&] { fired.push_back(1); });
  q.schedule(200, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(500, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(100, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(100, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(100, [&] { fired.push_back(1); });
  const EventId mid = q.schedule(200, [&] { fired.push_back(2); });
  q.schedule(300, [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId head = q.schedule(100, [] {});
  q.schedule(200, [] {});
  q.cancel(head);
  EXPECT_EQ(q.next_time(), 200);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(42, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, IdsAreUniqueAndNonZero) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  const EventId b = q.schedule(1, [] {});
  EXPECT_NE(a, kInvalidEventId);
  EXPECT_NE(b, kInvalidEventId);
  EXPECT_NE(a, b);
}

TEST(EventQueue, CompactionBoundsHeapWhenCancellationsDominate) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  // Cancel all but the last 100: without compaction the heap would keep all
  // 10000 entries until they surfaced at the top.
  for (std::size_t i = 0; i + 100 < ids.size(); ++i) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_LE(q.heap_entries(), 2 * q.size());
}

TEST(EventQueue, TinyQueuesNeverPayForCompaction) {
  // Below the compaction floor, cancelled entries may linger: cancelling 9
  // of 10 events must not shrink the heap (no O(n) rebuild for small n).
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (int i = 0; i < 9; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.heap_entries(), 10u);
}

TEST(EventQueue, PopOrderSurvivesCompaction) {
  // Interleave keepers and victims at equal timestamps so FIFO tie-breaking
  // is observable, cancel enough to trigger a rebuild, then verify pops
  // arrive in exactly the original schedule order.
  EventQueue q;
  std::vector<EventId> victims;
  std::vector<EventId> keepers;
  for (int i = 0; i < 200; ++i) {
    const SimTime at = static_cast<SimTime>(i / 4);  // four events per tick
    const EventId id = q.schedule(at, [] {});
    if (i % 8 == 0) {
      keepers.push_back(id);
    } else {
      victims.push_back(id);
    }
  }
  for (const EventId id : victims) q.cancel(id);
  EXPECT_EQ(q.size(), keepers.size());
  EXPECT_LE(q.heap_entries(), 2 * keepers.size());

  SimTime last_time = -1;
  std::size_t next_keeper = 0;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last_time);
    last_time = fired.time;
    ASSERT_LT(next_keeper, keepers.size());
    EXPECT_EQ(fired.id, keepers[next_keeper]);  // FIFO among equal times
    ++next_keeper;
  }
  EXPECT_EQ(next_keeper, keepers.size());
}

TEST(EventQueue, SchedulingStaysLiveAfterCompaction) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (std::size_t i = 0; i < 900; ++i) q.cancel(ids[i]);
  EXPECT_LE(q.heap_entries(), 2 * q.size());
  // The queue keeps working normally after the rebuild.
  bool fired = false;
  q.schedule(0, [&] { fired = true; });
  const auto front = q.pop();
  front.callback();
  EXPECT_TRUE(fired);
  EXPECT_EQ(front.time, 0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t state = 99;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(static_cast<SimTime>(state % 100000), [] {});
  }
  SimTime last = -1;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace spothost::sim
