#include "simcore/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spothost::sim {
namespace {

struct SinkCapture {
  std::vector<std::pair<LogLevel, std::string>> records;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::global().level();
    Logger::global().set_sink([this](LogLevel level, const std::string& msg) {
      capture_.records.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Logger::global().set_level(saved_level_);
    Logger::global().set_sink(nullptr);
  }
  SinkCapture capture_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, RespectsLevelThreshold) {
  Logger::global().set_level(LogLevel::kWarn);
  Logger::global().log(LogLevel::kInfo, 0, "hidden");
  Logger::global().log(LogLevel::kWarn, 0, "shown");
  ASSERT_EQ(capture_.records.size(), 1u);
  EXPECT_EQ(capture_.records[0].first, LogLevel::kWarn);
}

TEST_F(LoggingTest, MessageCarriesTimestampPrefix) {
  Logger::global().set_level(LogLevel::kDebug);
  Logger::global().log(LogLevel::kError, 2 * kHour, "boom");
  ASSERT_EQ(capture_.records.size(), 1u);
  EXPECT_NE(capture_.records[0].second.find("0d02:00:00.000"), std::string::npos);
  EXPECT_NE(capture_.records[0].second.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, MacroSkipsFormattingWhenDisabled) {
  Logger::global().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  SPOTHOST_LOG(LogLevel::kError, 0, expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture_.records.empty());
}

TEST_F(LoggingTest, MacroEmitsWhenEnabled) {
  Logger::global().set_level(LogLevel::kDebug);
  SPOTHOST_LOG(LogLevel::kInfo, kSecond, "value=" << 42);
  ASSERT_EQ(capture_.records.size(), 1u);
  EXPECT_NE(capture_.records[0].second.find("value=42"), std::string::npos);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace spothost::sim
