// Differential fuzz: the timing wheel and the binary heap must be
// observationally identical. Both backends replay the same randomized
// schedule/cancel/pop sequence; every pop must agree on (time, logical
// event), every cancel on its return value, and the complete firing order
// must match event for event. This is the determinism contract that lets
// SPOTHOST_EVENT_QUEUE switch backends without disturbing golden traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/timing_wheel.hpp"

namespace spothost::sim {
namespace {

class QueuePair {
 public:
  QueuePair()
      : heap_(make_event_queue(QueueBackend::kBinaryHeap)),
        wheel_(make_event_queue(QueueBackend::kTimingWheel)) {}

  void schedule(SimTime when) {
    const int logical = next_logical_++;
    const EventId hid =
        heap_->schedule(when, [this, logical] { heap_fired_.push_back(logical); });
    const EventId wid = wheel_->schedule(
        when, [this, logical] { wheel_fired_.push_back(logical); });
    heap_ids_.emplace(logical, hid);
    wheel_ids_.emplace(logical, wid);
    live_.push_back(logical);
  }

  void cancel_random(std::uint64_t r) {
    if (live_.empty()) return;
    const std::size_t pick = static_cast<std::size_t>(r % live_.size());
    const int logical = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
    const bool heap_ok = heap_->cancel(heap_ids_.at(logical));
    const bool wheel_ok = wheel_->cancel(wheel_ids_.at(logical));
    ASSERT_EQ(heap_ok, wheel_ok) << "cancel disagreement, logical " << logical;
  }

  void pop_one() {
    ASSERT_EQ(heap_->empty(), wheel_->empty());
    if (heap_->empty()) return;
    const SimTime next = heap_->next_time();
    ASSERT_EQ(next, wheel_->next_time());
    // Exercise the fused dispatch path too: a horizon just below the next
    // event must refuse on both backends.
    if (next > std::numeric_limits<SimTime>::min()) {
      EventQueue::Fired refused;
      ASSERT_FALSE(heap_->pop_due(next - 1, refused));
      ASSERT_FALSE(wheel_->pop_due(next - 1, refused));
    }
    EventQueue::Fired hf;
    EventQueue::Fired wf;
    ASSERT_TRUE(heap_->pop_due(next, hf));
    ASSERT_TRUE(wheel_->pop_due(next, wf));
    ASSERT_EQ(hf.time, wf.time);
    hf.callback();
    wf.callback();
    ASSERT_EQ(heap_fired_.size(), wheel_fired_.size());
    ASSERT_EQ(heap_fired_.back(), wheel_fired_.back())
        << "firing-order divergence at t=" << hf.time;
    frontier_ = hf.time;
  }

  void drain_all() {
    while (!heap_->empty() || !wheel_->empty()) pop_one();
    ASSERT_EQ(heap_fired_, wheel_fired_);
  }

  [[nodiscard]] SimTime frontier() const noexcept { return frontier_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_->size(); }

 private:
  std::unique_ptr<EventQueue> heap_;
  std::unique_ptr<EventQueue> wheel_;
  int next_logical_ = 0;
  std::vector<int> live_;  // logical ids not yet cancelled (may have fired)
  std::unordered_map<int, EventId> heap_ids_;
  std::unordered_map<int, EventId> wheel_ids_;
  std::vector<int> heap_fired_;
  std::vector<int> wheel_fired_;
  SimTime frontier_ = 0;
};

class QueueDifferential : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, QueueDifferential,
                         ::testing::Values(1u, 2u, 3u, 20150615u, 0xdeadbeefu));

TEST_P(QueueDifferential, RandomizedSequencesFireIdentically) {
  std::uint64_t state = GetParam();
  QueuePair pair;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t r = splitmix64(state);
    const std::uint64_t op = r % 100;
    if (op < 55 || pair.pending() == 0) {
      // Mostly near-future offsets, occasional bursts at the exact frontier
      // (FIFO ties), cross-level jumps, and rare overflow-range times.
      const std::uint64_t shape = splitmix64(state) % 10;
      SimTime delta = 0;
      if (shape < 3) {
        delta = static_cast<SimTime>(splitmix64(state) % 64);  // same window
      } else if (shape < 6) {
        delta = static_cast<SimTime>(splitmix64(state) % 100000);
      } else if (shape < 8) {
        delta = 0;  // exactly at the frontier: tie-break stress
      } else if (shape < 9) {
        delta = static_cast<SimTime>(splitmix64(state) % (1u << 30));
      } else {
        delta = TimingWheelQueue::kSpanMs +
                static_cast<SimTime>(splitmix64(state) % 1000);  // overflow
      }
      pair.schedule(pair.frontier() + delta);
    } else if (op < 75) {
      pair.cancel_random(splitmix64(state));
    } else {
      pair.pop_one();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  pair.drain_all();
}

}  // namespace
}  // namespace spothost::sim
