#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spothost::sim {
namespace {

double sample_mean(std::vector<double>& xs) {
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

TEST(Rng, SameSeedSameSequence) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  RngStream r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  RngStream r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo |= (x == 1);
    saw_hi |= (x == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  RngStream r(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.exponential(5.0));
  EXPECT_NEAR(sample_mean(xs), 5.0, 0.2);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  RngStream r(1);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanCvMatchesTargets) {
  RngStream r(13);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(r.lognormal_mean_cv(100.0, 0.3));
  const double m = sample_mean(xs);
  EXPECT_NEAR(m, 100.0, 1.5);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double cv = std::sqrt(ss / static_cast<double>(xs.size())) / m;
  EXPECT_NEAR(cv, 0.3, 0.02);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  RngStream r(13);
  EXPECT_DOUBLE_EQ(r.lognormal_mean_cv(42.0, 0.0), 42.0);
}

TEST(Rng, LognormalRejectsBadParams) {
  RngStream r(1);
  EXPECT_THROW(r.lognormal_mean_cv(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(r.lognormal_mean_cv(1.0, -0.5), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScaleAndTail) {
  RngStream r(17);
  int above_double = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(2.0, 1.5);
    EXPECT_GE(x, 2.0);
    if (x > 4.0) ++above_double;
  }
  // P(X > 2*x_m) = 2^-alpha = 2^-1.5 ~ 0.3536
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.3536, 0.02);
}

TEST(Rng, ParetoRejectsBadParams) {
  RngStream r(1);
  EXPECT_THROW(r.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ChanceRespectsProbability) {
  RngStream r(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngFactory, NamedStreamsAreIndependent) {
  RngFactory f(42);
  auto a = f.stream("alpha");
  auto b = f.stream("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngFactory, SameNameReproduces) {
  RngFactory f(42);
  auto a = f.stream("alpha");
  auto b = f.stream("alpha");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngFactory, IndexedStreamsDiffer) {
  RngFactory f(42);
  auto a = f.stream("runs", 0);
  auto b = f.stream("runs", 1);
  EXPECT_NE(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngFactory, DifferentMasterSeedsDecorrelate) {
  RngFactory f1(1), f2(2);
  auto a = f1.stream("x");
  auto b = f2.stream("x");
  EXPECT_NE(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Hashing, Fnv1aStableKnownValue) {
  // FNV-1a("") is the offset basis; "a" is a published vector.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(Hashing, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace spothost::sim
