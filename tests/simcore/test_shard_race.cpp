// ThreadSanitizer stress for the sharded engine: dense parallel windows on
// every pool thread, mailbox fan-out at every barrier, and multiple engines
// sharing one pool concurrently (nested run_batch). Registered in the TSan
// CI job (ShardedSim|ShardRace|RunBatch) — the assertions here are basic
// liveness/count checks; the real oracle is TSan itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "simcore/sharded_sim.hpp"

namespace spothost::sim {
namespace {

struct CountingSink final : obs::TraceSink {
  std::uint64_t events = 0;
  void on_event(const obs::TraceEvent&) override { ++events; }
};

void emit_one(Clock& clock, std::uint64_t id) {
  obs::Tracer* tracer = clock.tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  obs::TraceEvent e;
  e.t = clock.now();
  e.instance = id;
  tracer->emit(e);
}

// Dense per-shard work: every service ticks every minute, emits, and spawns
// an occasional zero-delay child; a global pulse every 10 minutes posts one
// mail to every shard. All shards have due work below every barrier, so
// every window runs the full run_batch path on the shared pool.
std::uint64_t hammer(ShardedSimulation& eng, std::size_t shards,
                     SimTime horizon) {
  CountingSink sink;
  obs::Tracer tracer;
  tracer.add_sink(&sink);
  eng.set_tracer(&tracer);

  struct Service {
    Clock* clock;
    std::uint64_t id;
    std::uint64_t ticks = 0;
    void tick() {
      ++ticks;
      emit_one(*clock, id);
      if (ticks % 7 == 0) clock->after(0, [this] { emit_one(*clock, id); });
      clock->after(kMinute, [this] { tick(); });
    }
  };
  constexpr std::size_t kPerShard = 4;
  std::vector<std::unique_ptr<Service>> services;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t i = 0; i < kPerShard; ++i) {
      auto svc = std::make_unique<Service>();
      svc->clock = &eng.shard_clock(s);
      svc->id = s * kPerShard + i + 1;
      Service* raw = svc.get();
      raw->clock->at(kMinute + static_cast<SimTime>(i), [raw] { raw->tick(); });
      services.push_back(std::move(svc));
    }
  }
  struct Pulser {
    ShardedSimulation* eng;
    std::size_t shards;
    void fire() {
      for (std::size_t s = 0; s < shards; ++s) {
        Clock* cp = &eng->shard_clock(s);
        eng->post(s, [cp] { emit_one(*cp, 0); });
      }
      eng->after(10 * kMinute, [this] { fire(); });
    }
  };
  Pulser pulser{&eng, shards};
  eng.at(10 * kMinute, [&pulser] { pulser.fire(); });
  eng.run_until(horizon);
  eng.set_tracer(nullptr);
  return sink.events;
}

TEST(ShardRace, DenseWindowsOnAllPoolThreads) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kShards = 8;
  ShardedSimulation eng(kShards, default_queue_backend(), &pool);
  const std::uint64_t events = hammer(eng, kShards, 2 * kHour);
  EXPECT_GT(events, 0u);
  EXPECT_GT(eng.stats().windows, 0u);
  // Event count is a pure function of the workload — recompute serially.
  ShardedSimulation serial(kShards, default_queue_backend(), &pool);
  EXPECT_EQ(hammer(serial, kShards, 2 * kHour), events);
}

TEST(ShardRace, ConcurrentDefaultShardCountLookups) {
  // Engines on different driver threads read the SPOTHOST_SHARDS knob
  // concurrently (sweeps construct one World per worker). The oversize
  // value forces every call down the clamp-warning path, whose once-only
  // latch used to be an unsynchronized static bool — TSan flags that
  // design; the std::once_flag one is clean.
  ::setenv("SPOTHOST_SHARDS", "1048576", 1);
  constexpr int kThreads = 8;
  std::vector<std::size_t> seen(kThreads, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&seen, i] { seen[i] = default_shard_count(); });
  }
  for (auto& t : threads) t.join();
  ::unsetenv("SPOTHOST_SHARDS");
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(seen[i], seen[0]);
    EXPECT_GE(seen[i], 1u);
  }
}

TEST(ShardRace, ConcurrentEnginesShareOnePool) {
  // Two driver threads each run their own sharded engine against ONE shared
  // pool: run_batch claims are interleaved arbitrarily, and pool workers
  // execute windows of both engines back to back. Per-engine results must
  // still be independent and deterministic.
  exec::ThreadPool pool(3);
  constexpr std::size_t kShards = 4;
  std::atomic<std::uint64_t> counts[2] = {{0}, {0}};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 2; ++d) {
    drivers.emplace_back([&pool, &counts, d] {
      ShardedSimulation eng(kShards, default_queue_backend(), &pool);
      counts[d] = hammer(eng, kShards, kHour);
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_GT(counts[0].load(), 0u);
  EXPECT_EQ(counts[0].load(), counts[1].load());
}

}  // namespace
}  // namespace spothost::sim
