// ShardedSimulation: bit-identity with the serial engine (the PR 9
// non-negotiable), mailbox semantics, phase-rule enforcement, and the
// SPOTHOST_SHARDS knob. The byte-identity tests drive a workload whose
// callbacks are engine-agnostic — the same lambdas run on a plain
// Simulation (all "lanes" are the one clock) and on ShardedSimulation(K)
// (lanes are shard clocks) — and pin the recorded trace streams equal
// across K ∈ {1, 2, 3, 8} and both queue backends.
#include "simcore/sharded_sim.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "simcore/simulation.hpp"

namespace spothost::sim {
namespace {

using obs::EventKind;
using obs::TraceEvent;

constexpr SimTime kHorizon = 6 * kHour;

struct Recorder final : obs::TraceSink {
  std::vector<TraceEvent> events;
  void on_event(const TraceEvent& e) override { events.push_back(e); }
};

void emit(Clock& clock, EventKind kind, std::uint64_t id, double value) {
  obs::Tracer* tracer = clock.tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  TraceEvent e;
  e.t = clock.now();
  e.kind = kind;
  e.instance = id;
  e.value = value;
  tracer->emit(e);
}

// One synthetic service: periodic ticks on its own lane, a zero-delay child
// every 3rd tick, a scheduled-then-cancelled event every 4th (exercises
// lane-local cancel and arena slot reuse inside windows), and a far-future
// "doomed" event the global pulse cancels cross-lane from the serial phase.
struct Service {
  Clock* clock = nullptr;
  std::uint64_t id = 0;
  SimTime period = 0;
  std::uint64_t ticks = 0;
  EventHandle doomed;

  void tick() {
    ++ticks;
    emit(*clock, EventKind::kPriceChange, id, static_cast<double>(ticks));
    if (ticks % 3 == 0) {
      clock->after(0, [this] {
        emit(*clock, EventKind::kAcquisition, id, static_cast<double>(ticks));
      });
    }
    if (ticks % 4 == 0) {
      auto h = clock->after(period / 2, [this] {
        emit(*clock, EventKind::kOutageBegin, id, -1.0);
      });
      h.cancel();
    }
    clock->after(period, [this] { tick(); });
  }
};

struct Pulse {
  Engine* eng = nullptr;
  std::vector<Service>* services = nullptr;
  std::uint64_t n = 0;

  void fire() {
    ++n;
    emit(*eng, EventKind::kBillingHourTick, 0, static_cast<double>(n));
    // Cross-lane cancel from the serial phase (allowed): kill one service's
    // doomed event per pulse.
    if (n <= services->size()) (*services)[n - 1].doomed.cancel();
    eng->after(30 * kMinute, [this] { fire(); });
  }
};

/// Builds the workload on `eng`, mapping logical service i to lane_of(i),
/// runs to `horizon` (optionally in two segments), and returns the trace.
std::vector<TraceEvent> run_workload(
    Engine& eng, const std::function<Clock&(std::size_t)>& lane_of,
    SimTime horizon, bool split_run = false) {
  Recorder rec;
  obs::Tracer tracer;
  tracer.add_sink(&rec);
  eng.set_tracer(&tracer);

  constexpr std::size_t kServices = 24;
  std::vector<Service> services(kServices);
  for (std::size_t i = 0; i < kServices; ++i) {
    Service& s = services[i];
    s.clock = &lane_of(i);
    s.id = i + 1;
    // Every 5th service ticks exactly on the half-hour pulse grid, forcing
    // barrier-time ties; the rest have coprime-ish periods.
    s.period = (i % 5 == 0) ? 30 * kMinute
                            : static_cast<SimTime>(5 + i) * kMinute;
    s.clock->at(s.period, [&s] { s.tick(); });
    s.doomed = s.clock->at(horizon - 1, [&s] {
      emit(*s.clock, EventKind::kOutageEnd, s.id, 0.0);
    });
  }
  Pulse pulse{&eng, &services, 0};
  eng.at(30 * kMinute, [&pulse] { pulse.fire(); });

  if (split_run) {
    eng.run_until(horizon / 2);
    eng.run_until(horizon);
  } else {
    eng.run_until(horizon);
  }
  eng.set_tracer(nullptr);
  return rec.events;
}

std::vector<TraceEvent> serial_reference(QueueBackend backend) {
  Simulation serial(backend);
  return run_workload(
      serial, [&serial](std::size_t) -> Clock& { return serial; }, kHorizon);
}

class ShardedByteIdentity : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(ShardedByteIdentity, MatchesSerialForEveryShardCount) {
  const QueueBackend backend = GetParam();
  const auto expected = serial_reference(backend);
  ASSERT_FALSE(expected.empty());
  for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
    ShardedSimulation eng(shards, backend);
    const auto got = run_workload(
        eng,
        [&eng, shards](std::size_t i) -> Clock& {
          return eng.shard_clock(shard_of_key(i, shards));
        },
        kHorizon);
    EXPECT_EQ(got, expected) << "shards=" << shards;
    EXPECT_GT(eng.dispatched(), 0u);
  }
}

TEST_P(ShardedByteIdentity, SplitRunMatchesSingleRun) {
  const QueueBackend backend = GetParam();
  const auto expected = serial_reference(backend);
  ShardedSimulation eng(4, backend);
  const auto got = run_workload(
      eng,
      [&eng](std::size_t i) -> Clock& {
        return eng.shard_clock(shard_of_key(i, 4));
      },
      kHorizon, /*split_run=*/true);
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardedByteIdentity,
                         ::testing::Values(QueueBackend::kTimingWheel,
                                           QueueBackend::kBinaryHeap),
                         [](const auto& param_info) {
                           return param_info.param == QueueBackend::kTimingWheel
                                      ? "Wheel"
                                      : "Heap";
                         });

TEST(ShardedSim, MailboxDeliveryIsKInvariant) {
  // The same logical post pattern must produce the same trace for every
  // shard count — mails are delivered in post order at the head of the next
  // window, regardless of which lane they land on.
  constexpr std::size_t kLogical = 12;
  std::vector<std::vector<TraceEvent>> runs;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    auto eng = std::make_unique<ShardedSimulation>(shards);
    Recorder rec;
    obs::Tracer tracer;
    tracer.add_sink(&rec);
    eng->set_tracer(&tracer);

    struct Pulser {
      ShardedSimulation* eng;
      std::size_t shards;
      std::uint64_t n = 0;
      void fire() {
        ++n;
        for (std::uint64_t j = 0; j < kLogical; ++j) {
          const std::size_t s = shard_of_key(j, shards);
          Clock* cp = &eng->shard_clock(s);
          const std::uint64_t round = n;
          eng->post(s, [cp, j, round] {
            emit(*cp, EventKind::kPriceChange, j + 1,
                 static_cast<double>(round));
            cp->after(5 * kMinute, [cp, j, round] {
              emit(*cp, EventKind::kAcquisition, j + 1,
                   static_cast<double>(round));
            });
          });
        }
        if (n < 8) eng->after(20 * kMinute, [this] { fire(); });
      }
    };
    Pulser pulser{eng.get(), shards, 0};
    eng->at(20 * kMinute, [&pulser] { pulser.fire(); });
    eng->run_until(4 * kHour);
    runs.push_back(std::move(rec.events));
  }
  ASSERT_FALSE(runs.front().empty());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs.front()) << "run index " << i;
  }
}

TEST(ShardedSim, MailIsDeliveredAfterPostingTimestampBeforeLaterEvents) {
  ShardedSimulation eng(2);
  Recorder rec;
  obs::Tracer tracer;
  tracer.add_sink(&rec);
  eng.set_tracer(&tracer);
  Clock& c0 = eng.shard_clock(0);

  c0.at(10, [&c0] { emit(c0, EventKind::kPriceChange, 1, 0); });  // A
  eng.at(10, [&] {
    emit(eng, EventKind::kPriceChange, 2, 0);                     // G
    eng.post(0, [&c0] { emit(c0, EventKind::kPriceChange, 4, 0); });  // M
    eng.after(0, [&] { emit(eng, EventKind::kPriceChange, 3, 0); });  // Z
  });
  c0.at(20, [&c0] { emit(c0, EventKind::kPriceChange, 5, 0); });  // B
  eng.run_until(30);

  // The mail runs after EVERY event of the posting timestamp — including
  // the zero-delay child Z scheduled after the post — and before any later
  // event. This is the documented deferred-delivery contract.
  std::vector<std::uint64_t> order;
  for (const auto& e : rec.events) order.push_back(e.instance);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(rec.events[3].t, 10);  // the mail carries its posting time
  EXPECT_EQ(eng.now(), 30);
}

TEST(ShardedSim, GlobalSchedulingFromWindowThrows) {
  ShardedSimulation eng(2);
  Clock& c0 = eng.shard_clock(0);
  c0.at(5, [&eng] { eng.after(10, [] {}); });
  // No global events: the window runs to the horizon barrier, so the
  // callback executes in window context and must be rejected.
  EXPECT_THROW(eng.run_until(20), std::logic_error);
}

TEST(ShardedSim, CrossShardSchedulingFromWindowThrows) {
  ShardedSimulation eng(2);
  Clock& c0 = eng.shard_clock(0);
  Clock& c1 = eng.shard_clock(1);
  c0.at(5, [&c1] { c1.after(1, [] {}); });
  EXPECT_THROW(eng.run_until(20), std::logic_error);
}

TEST(ShardedSim, PostFromWindowThrows) {
  ShardedSimulation eng(2);
  Clock& c0 = eng.shard_clock(0);
  c0.at(5, [&eng] { eng.post(1, [] {}); });
  EXPECT_THROW(eng.run_until(20), std::logic_error);
}

TEST(ShardedSim, OwnLaneSchedulingAndCancelInWindowIsAllowed) {
  ShardedSimulation eng(2);
  int fired = 0;
  Clock& c0 = eng.shard_clock(0);
  c0.at(5, [&c0, &fired] {
    auto keep = c0.after(1, [&fired] { ++fired; });
    (void)keep;
    auto drop = c0.after(2, [&fired] { fired += 100; });
    EXPECT_TRUE(drop.cancel());
  });
  eng.run_until(20);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, SerialPhaseMayScheduleAcrossLanes) {
  ShardedSimulation eng(2);
  int fired = 0;
  // A global (barrier) callback may fan work out to any lane directly.
  eng.at(10, [&eng, &fired] {
    eng.shard_clock(0).after(5, [&fired] { ++fired; });
    eng.shard_clock(1).after(5, [&fired] { ++fired; });
  });
  eng.run_until(kHour);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSim, CrossLaneCancelFromWindowThrows) {
  // The other half of the hour-tick audit (DESIGN.md §9.2): handles minted
  // on the global clock may only be cancelled from the serial phase. A
  // window callback reaching across to cancel one is the bug the rule
  // exists to catch.
  ShardedSimulation eng(2);
  EventHandle global_handle = eng.at(15, [] {});
  eng.shard_clock(0).at(5, [&global_handle] { global_handle.cancel(); });
  EXPECT_THROW(eng.run_until(10), std::logic_error);
}

TEST(ShardedSim, RunStageEvaluatesAllTasksInParallelContext) {
  ShardedSimulation eng(3);
  eng.run_until(kHour);  // advance so lane-clock alignment is observable
  std::vector<SimTime> seen(3, -1);
  std::vector<Callback> tasks(3);
  tasks[0] = [&eng, &seen] { seen[0] = eng.shard_clock(0).now(); };
  tasks[2] = [&eng, &seen] { seen[2] = eng.shard_clock(2).now(); };
  eng.run_stage(std::move(tasks));
  // Idle lanes lag the global clock; the stage aligns participating lanes
  // to the barrier time so pure reads of "now" agree with the serial run.
  EXPECT_EQ(seen[0], kHour);
  EXPECT_EQ(seen[1], -1);  // null slot skipped
  EXPECT_EQ(seen[2], kHour);
  EXPECT_EQ(eng.stats().stages, 1u);
}

TEST(ShardedSim, RunStageWithAllNullTasksIsFree) {
  ShardedSimulation eng(2);
  eng.run_stage(std::vector<Callback>(2));
  EXPECT_EQ(eng.stats().stages, 0u);
}

TEST(ShardedSim, RunStageValidatesTaskCount) {
  ShardedSimulation eng(2);
  EXPECT_THROW(eng.run_stage(std::vector<Callback>(3)), std::invalid_argument);
}

TEST(ShardedSim, RunStageFromWindowThrows) {
  ShardedSimulation eng(2);
  eng.shard_clock(0).at(5, [&eng] {
    eng.run_stage(std::vector<Callback>(2));
  });
  EXPECT_THROW(eng.run_until(20), std::logic_error);
}

TEST(ShardedSim, StageTaskMayNotSchedule) {
  ShardedSimulation eng(2);
  std::vector<Callback> tasks(2);
  // Even the task's OWN lane is off-limits: stages are pure evaluation.
  tasks[0] = [&eng] { eng.shard_clock(0).after(1, [] {}); };
  EXPECT_THROW(eng.run_stage(std::move(tasks)), std::logic_error);
}

TEST(ShardedSim, StageTaskMayNotCancel) {
  ShardedSimulation eng(2);
  EventHandle h = eng.shard_clock(0).at(50, [] {});
  std::vector<Callback> tasks(2);
  tasks[0] = [&h] { h.cancel(); };
  EXPECT_THROW(eng.run_stage(std::move(tasks)), std::logic_error);
}

TEST(ShardedSim, StageTaskMayNotTrace) {
  ShardedSimulation eng(2);
  Recorder rec;
  obs::Tracer tracer;
  tracer.add_sink(&rec);
  eng.set_tracer(&tracer);
  std::vector<Callback> tasks(2);
  Clock& c0 = eng.shard_clock(0);
  tasks[0] = [&c0] { emit(c0, EventKind::kPriceChange, 1, 1.0); };
  EXPECT_THROW(eng.run_stage(std::move(tasks)), std::logic_error);
  // The illegal trace is dropped, not merged.
  eng.set_tracer(nullptr);
  EXPECT_TRUE(rec.events.empty());
}

TEST(ShardedSim, SameTickCancelSuppressesStagedVictim) {
  // The serial engine pops one event at a time, so a barrier-time callback
  // canceling another event due at the SAME timestamp suppresses it (cancel
  // returns true, victim never fires). The sharded barrier step bulk-stages
  // all same-tick events before running any of them; the staged victims must
  // still be cancellable — on the global lane, the canceler's own lane, and
  // across lanes.
  ShardedSimulation eng(2);
  int fired = 0;
  EventHandle victim_global, victim_shard0, victim_shard1;
  // Scheduled first -> lowest vgs -> runs first at the barrier.
  eng.at(10, [&] {
    EXPECT_TRUE(victim_global.cancel());
    EXPECT_TRUE(victim_shard0.cancel());
    EXPECT_TRUE(victim_shard1.cancel());
  });
  victim_global = eng.at(10, [&fired] { fired += 1; });
  victim_shard0 = eng.shard_clock(0).at(10, [&fired] { fired += 10; });
  victim_shard1 = eng.shard_clock(1).at(10, [&fired] { fired += 100; });
  eng.run_until(kHour);
  EXPECT_EQ(fired, 0);
  // Suppressed events are not dispatches (serial parity: only the canceler
  // and this trailing probe fire).
  int probed = 0;
  eng.at(kHour + 1, [&probed] { ++probed; });
  eng.run_until(2 * kHour);
  EXPECT_EQ(probed, 1);
  EXPECT_EQ(eng.dispatched(), 2u);
}

TEST(ShardedSim, SameTickCancelOfAlreadyFiredEventFails) {
  ShardedSimulation eng(2);
  int fired = 0;
  EventHandle first = eng.at(10, [&fired] { ++fired; });
  eng.at(10, [&first] { EXPECT_FALSE(first.cancel()); });
  eng.run_until(kHour);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, ArgumentValidation) {
  EXPECT_THROW(ShardedSimulation eng(0), std::invalid_argument);
  ShardedSimulation eng(2);
  EXPECT_EQ(eng.shard_count(), 2u);
  EXPECT_THROW((void)eng.shard_clock(2), std::out_of_range);
  EXPECT_THROW(eng.post(2, [] {}), std::out_of_range);
  EXPECT_THROW(eng.after(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(eng.shard_clock(0).after(-1, [] {}), std::invalid_argument);
  eng.run_until(100);
  EXPECT_THROW(eng.at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(eng.shard_clock(0).at(50, [] {}), std::invalid_argument);
}

TEST(ShardedSim, CountersAggregateAcrossLanes) {
  ShardedSimulation eng(2);
  int fired = 0;
  eng.at(10, [&fired] { ++fired; });
  eng.shard_clock(0).at(20, [&fired] { ++fired; });
  eng.shard_clock(1).at(30, [&fired] { ++fired; });
  eng.post(0, [&fired] { ++fired; });
  EXPECT_EQ(eng.pending(), 4u);
  eng.run_until(kHour);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(eng.dispatched(), 4u);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.now(), kHour);
  const auto stats = eng.stats();
  EXPECT_GE(stats.windows, 1u);
  EXPECT_GE(stats.barrier_steps, 1u);
}

TEST(ShardedSim, RunForeverStopsAtLastEvent) {
  ShardedSimulation eng(2);
  eng.shard_clock(1).at(42, [] {});
  eng.run();
  EXPECT_EQ(eng.now(), 42);
  EXPECT_EQ(eng.shard_clock(0).now(), 42);
}

TEST(ShardedSimEnv, ShardKnobValidationAndClamp) {
  const auto hw = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  ASSERT_EQ(setenv("SPOTHOST_SHARDS", "garbage", 1), 0);
  EXPECT_EQ(default_shard_count(), 1u);
  ASSERT_EQ(setenv("SPOTHOST_SHARDS", "0", 1), 0);
  EXPECT_EQ(default_shard_count(), 1u);
  ASSERT_EQ(setenv("SPOTHOST_SHARDS", "-3", 1), 0);
  EXPECT_EQ(default_shard_count(), 1u);
  ASSERT_EQ(setenv("SPOTHOST_SHARDS", "2", 1), 0);
  EXPECT_EQ(default_shard_count(), std::min<std::size_t>(2, hw));
  // A request beyond the machine is clamped (with a logged warning), never
  // honoured: oversubscribed windows would only add barrier stall.
  ASSERT_EQ(setenv("SPOTHOST_SHARDS", "4096", 1), 0);
  EXPECT_EQ(default_shard_count(), hw);
  ASSERT_EQ(unsetenv("SPOTHOST_SHARDS"), 0);
  EXPECT_EQ(default_shard_count(), 1u);
}

TEST(ShardedSimEnv, FactoryHonoursExplicitShardsWithoutClamp) {
  // An explicit program choice is not hardware-clamped — byte identity
  // makes an oversubscribed K correct, just slower.
  auto eng = make_simulation_engine(8);
  int fired = 0;
  eng->at(10, [&fired] { ++fired; });
  eng->run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng->now(), 20);
  // shards = 1 must be the plain serial engine (byte-transparent default).
  auto serial = make_simulation_engine(1);
  EXPECT_NE(dynamic_cast<Simulation*>(serial.get()), nullptr);
}

TEST(ShardOfKey, IsStableAndInRange) {
  for (std::size_t shards : {1u, 2u, 5u, 8u}) {
    for (std::uint64_t key = 0; key < 1000; ++key) {
      const std::size_t s = shard_of_key(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of_key(key, shards));  // pure function of (key, K)
    }
  }
  // The mix actually spreads consecutive ids (regression guard against a
  // degenerate identity hash sending everything to shard key % K).
  std::vector<int> counts(8, 0);
  for (std::uint64_t key = 0; key < 800; ++key) ++counts[shard_of_key(key, 8)];
  for (const int c : counts) EXPECT_GT(c, 50);
}

}  // namespace
}  // namespace spothost::sim
