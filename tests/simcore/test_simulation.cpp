#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spothost::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
}

TEST(Simulation, RunAdvancesClockToEvents) {
  Simulation s;
  std::vector<SimTime> seen;
  s.at(100, [&] { seen.push_back(s.now()); });
  s.at(250, [&] { seen.push_back(s.now()); });
  s.run_until(1000);
  EXPECT_EQ(seen, (std::vector<SimTime>{100, 250}));
  EXPECT_EQ(s.now(), 1000);  // clock parked at the horizon
}

TEST(Simulation, EventsAtHorizonFire) {
  Simulation s;
  bool fired = false;
  s.at(1000, [&] { fired = true; });
  s.run_until(1000);
  EXPECT_TRUE(fired);
}

TEST(Simulation, EventsPastHorizonDoNotFire) {
  Simulation s;
  bool fired = false;
  s.at(1001, [&] { fired = true; });
  s.run_until(1000);
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, AfterSchedulesRelativeToNow) {
  Simulation s;
  SimTime fired_at = -1;
  s.at(500, [&] { s.after(30, [&] { fired_at = s.now(); }); });
  s.run_until(10000);
  EXPECT_EQ(fired_at, 530);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.at(100, [] {});
  s.run_until(100);
  EXPECT_THROW(s.at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(s.after(-1, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelStopsPendingEvent) {
  Simulation s;
  bool fired = false;
  EventHandle handle = s.at(100, [&] { fired = true; });
  EXPECT_TRUE(handle.valid());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.cancel());  // second cancel is a no-op
  s.run_until(1000);
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventsCanScheduleAtSameTimestamp) {
  Simulation s;
  std::vector<int> order;
  s.at(100, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(2); });
  });
  s.at(100, [&] { order.push_back(3); });
  s.run_until(200);
  // FIFO among equal timestamps: the nested zero-delay event was scheduled
  // after the second top-level event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulation, StepFiresExactlyOneEvent) {
  Simulation s;
  int count = 0;
  s.at(10, [&] { ++count; });
  s.at(20, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 10);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, DispatchedCountsEvents) {
  Simulation s;
  for (int i = 1; i <= 7; ++i) s.at(i, [] {});
  s.run_until(100);
  EXPECT_EQ(s.dispatched(), 7u);
}

TEST(Simulation, RunUntilIsResumable) {
  Simulation s;
  std::vector<SimTime> seen;
  for (SimTime t = 100; t <= 500; t += 100) {
    s.at(t, [&, t] { seen.push_back(t); });
  }
  s.run_until(250);
  EXPECT_EQ(seen.size(), 2u);
  s.run_until(1000);
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace spothost::sim
