#include "simcore/time.hpp"

#include <gtest/gtest.h>

namespace spothost::sim {
namespace {

TEST(Time, UnitConstantsCompose) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(Time, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1500), 1.5);
  EXPECT_EQ(from_seconds(1.5), 1500);
  EXPECT_EQ(from_seconds(to_seconds(123456789)), 123456789);
}

TEST(Time, FromSecondsRoundsToNearestMillisecond) {
  EXPECT_EQ(from_seconds(0.0004), 0);
  EXPECT_EQ(from_seconds(0.0006), 1);
  EXPECT_EQ(from_seconds(-0.0006), -1);
}

TEST(Time, ToHours) {
  EXPECT_DOUBLE_EQ(to_hours(kDay), 24.0);
  EXPECT_DOUBLE_EQ(to_hours(kHour / 2), 0.5);
}

TEST(Time, FromHours) {
  EXPECT_EQ(from_hours(1.0), kHour);
  EXPECT_EQ(from_hours(0.5), 30 * kMinute);
}

TEST(Time, HourFloorAlignsDown) {
  EXPECT_EQ(hour_floor(0), 0);
  EXPECT_EQ(hour_floor(kHour - 1), 0);
  EXPECT_EQ(hour_floor(kHour), kHour);
  EXPECT_EQ(hour_floor(kHour + 1), kHour);
  EXPECT_EQ(hour_floor(5 * kHour + 30 * kMinute), 5 * kHour);
}

TEST(Time, NextHourBoundaryIsStrictlyAfter) {
  EXPECT_EQ(next_hour_boundary(0), kHour);
  EXPECT_EQ(next_hour_boundary(kHour - 1), kHour);
  EXPECT_EQ(next_hour_boundary(kHour), 2 * kHour);
}

TEST(Time, FormatTimeRendersComponents) {
  EXPECT_EQ(format_time(0), "0d00:00:00.000");
  EXPECT_EQ(format_time(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond + 5),
            "1d02:03:04.005");
  EXPECT_EQ(format_time(-kSecond), "-0d00:00:01.000");
}

class TimeConversionSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimeConversionSweep, SecondsRoundTripWithinHalfMillisecond) {
  const double s = GetParam();
  const SimTime t = from_seconds(s);
  EXPECT_NEAR(to_seconds(t), s, 0.0005);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeConversionSweep,
                         ::testing::Values(0.0, 0.001, 0.42, 1.0, 59.999, 3600.0,
                                           86400.0, 123456.789));

}  // namespace
}  // namespace spothost::sim
