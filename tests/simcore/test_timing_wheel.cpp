// TimingWheelQueue edge cases: cascade boundaries, the overflow bucket,
// cancellation in every location an event can live, clear(), and the
// monotone-schedule precondition. The backend-generic contract is covered by
// test_event_queue.cpp; the differential fuzz lives in
// test_queue_differential.cpp.
#include "simcore/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace spothost::sim {
namespace {

std::vector<SimTime> drain_times(TimingWheelQueue& q) {
  std::vector<SimTime> times;
  while (!q.empty()) times.push_back(q.pop().time);
  return times;
}

TEST(TimingWheel, EventsAroundLevelOneBoundary) {
  // 63 is the last level-0 slot of the initial window; 64 and 65 start in
  // level 1 and must cascade down before firing.
  TimingWheelQueue q;
  q.schedule(65, [] {});
  q.schedule(63, [] {});
  q.schedule(64, [] {});
  EXPECT_EQ(drain_times(q), (std::vector<SimTime>{63, 64, 65}));
}

TEST(TimingWheel, EventsAroundLevelTwoBoundary) {
  TimingWheelQueue q;
  for (const SimTime t : {4097, 4095, 4096, 4094}) q.schedule(t, [] {});
  EXPECT_EQ(drain_times(q), (std::vector<SimTime>{4094, 4095, 4096, 4097}));
}

TEST(TimingWheel, EventsAcrossEveryLevel) {
  // One event per level of the wheel plus one in overflow; global order must
  // still come out sorted.
  TimingWheelQueue q;
  std::vector<SimTime> times;
  for (int level = 0; level < TimingWheelQueue::kLevels; ++level) {
    times.push_back((SimTime{1} << (TimingWheelQueue::kLevelBits * level)) + 3);
  }
  times.push_back(TimingWheelQueue::kSpanMs + 17);  // overflow
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    q.schedule(*it, [] {});
  }
  EXPECT_EQ(q.overflow_entries(), 1u);
  EXPECT_EQ(drain_times(q), times);
}

TEST(TimingWheel, FifoPreservedAcrossCascade) {
  // Two events at the same far timestamp, scheduled before and after a pop
  // that forces the first one through a cascade path: schedule order must
  // still decide the tie.
  TimingWheelQueue q;
  std::vector<int> fired;
  q.schedule(5000, [&] { fired.push_back(1); });
  q.schedule(10, [] {});
  (void)q.pop();  // advances the wheel; 5000 has not cascaded yet
  q.schedule(5000, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, OverflowBucketHoldsFarFutureEvents) {
  TimingWheelQueue q;
  q.schedule(TimingWheelQueue::kSpanMs + 1, [] {});
  q.schedule(2 * TimingWheelQueue::kSpanMs + 5, [] {});
  q.schedule(100, [] {});
  EXPECT_EQ(q.overflow_entries(), 2u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().time, 100);
  // Popping into the far future migrates overflow entries into the wheel.
  EXPECT_EQ(q.pop().time, TimingWheelQueue::kSpanMs + 1);
  EXPECT_EQ(q.overflow_entries(), 1u);
  EXPECT_EQ(q.pop().time, 2 * TimingWheelQueue::kSpanMs + 5);
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheel, OverflowPreservesFifoAtEqualTimes) {
  TimingWheelQueue q;
  std::vector<int> fired;
  const SimTime far = TimingWheelQueue::kSpanMs + 42;
  for (int i = 0; i < 5; ++i) {
    q.schedule(far, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimingWheel, CancelInWheelBucket) {
  TimingWheelQueue q;
  const EventId a = q.schedule(100, [] {});
  const EventId b = q.schedule(100, [] {});
  const EventId c = q.schedule(100, [] {});
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().id, a);
  EXPECT_EQ(q.pop().id, c);
}

TEST(TimingWheel, CancelWhileBufferedInDrain) {
  // Pop the first event of a same-millisecond batch (the rest of the batch
  // is buffered in the drain), then cancel a buffered entry: it must be
  // skipped, not fired.
  TimingWheelQueue q;
  std::vector<int> fired;
  q.schedule(50, [&] { fired.push_back(1); });
  const EventId doomed = q.schedule(50, [&] { fired.push_back(2); });
  q.schedule(50, [&] { fired.push_back(3); });
  q.pop().callback();
  EXPECT_TRUE(q.cancel(doomed));
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(TimingWheel, CancelInOverflowBucket) {
  TimingWheelQueue q;
  const EventId far = q.schedule(TimingWheelQueue::kSpanMs + 9, [] {});
  q.schedule(10, [] {});
  EXPECT_EQ(q.overflow_entries(), 1u);
  EXPECT_TRUE(q.cancel(far));
  EXPECT_EQ(q.overflow_entries(), 0u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.cancel(far));
}

TEST(TimingWheel, SchedulingBeforeWheelTimeThrows) {
  TimingWheelQueue q;
  q.schedule(100, [] {});
  (void)q.pop();
  EXPECT_EQ(q.wheel_time(), 100);
  EXPECT_THROW(q.schedule(99, [] {}), std::invalid_argument);
  // Exactly the frontier is allowed (events scheduling at "now").
  q.schedule(100, [] {});
  EXPECT_EQ(q.pop().time, 100);
}

TEST(TimingWheel, PeekDoesNotBlockIntermediateSchedules) {
  // next_time() peeks far ahead; scheduling between the frontier and the
  // peeked time must still work, and fire first.
  TimingWheelQueue q;
  q.schedule(10, [] {});
  q.schedule(1000000, [] {});
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.next_time(), 1000000);
  q.schedule(500, [] {});
  EXPECT_EQ(q.next_time(), 500);
  EXPECT_EQ(q.pop().time, 500);
  EXPECT_EQ(q.pop().time, 1000000);
}

TEST(TimingWheel, ClearResetsEverythingIncludingWheelTime) {
  TimingWheelQueue q;
  q.schedule(100, [] {});
  q.schedule(TimingWheelQueue::kSpanMs + 3, [] {});
  (void)q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.overflow_entries(), 0u);
  EXPECT_EQ(q.wheel_time(), 0);
  // Time restarts from zero: scheduling at 0 is legal again.
  bool fired = false;
  q.schedule(0, [&] { fired = true; });
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST(TimingWheel, DenseMillisecondsSweepCleanly) {
  // A contiguous run of per-millisecond events across several level-0
  // windows — the hour-tick-heavy fleet pattern in miniature.
  TimingWheelQueue q;
  const SimTime n = 1000;
  for (SimTime t = 0; t < n; ++t) q.schedule(t, [] {});
  for (SimTime t = 0; t < n; ++t) {
    ASSERT_EQ(q.pop().time, t);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace spothost::sim
