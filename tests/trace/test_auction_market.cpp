#include "trace/auction_market.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "trace/features.hpp"

namespace spothost::trace {
namespace {

using sim::kDay;

constexpr double kPon = 0.24;
constexpr sim::SimTime kMonth = 30 * kDay;

PriceTrace make(std::uint64_t seed,
                AuctionMarketParams params = AuctionMarketParams{}) {
  sim::RngFactory f(seed);
  auto rng = f.stream("auction");
  return generate_auction_market(params, kPon, kMonth, rng);
}

TEST(AuctionMarket, CoversHorizonWithPositivePrices) {
  const auto t = make(1);
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), kMonth);
  for (const auto& p : t.points()) EXPECT_GT(p.price, 0.0);
}

TEST(AuctionMarket, PriceBoundedByFloorAndCap) {
  const AuctionMarketParams params;
  const auto t = make(2, params);
  EXPECT_GE(t.min_price(0, kMonth), params.floor_multiple * kPon - 1e-12);
  EXPECT_LE(t.max_price(0, kMonth), params.price_cap_multiple * kPon + 1e-12);
}

TEST(AuctionMarket, SlackCapacityPinsPriceAtFloor) {
  AuctionMarketParams params;
  params.capacity_units = 100000.0;  // effectively infinite pool
  const auto t = make(3, params);
  EXPECT_NEAR(t.max_price(0, kMonth), params.floor_multiple * kPon, 1e-9);
}

TEST(AuctionMarket, ScarcityRaisesPrices) {
  AuctionMarketParams roomy;
  roomy.capacity_units = 400.0;
  AuctionMarketParams tight = roomy;
  tight.capacity_units = 60.0;
  const auto cheap = make(4, roomy);
  const auto pricey = make(4, tight);
  EXPECT_GT(pricey.time_average(0, kMonth), cheap.time_average(0, kMonth));
}

TEST(AuctionMarket, MostlyUndercutsOnDemandAtDefaults) {
  const auto t = make(5);
  EXPECT_GT(t.fraction_below(kPon, 0, kMonth), 0.7);
  EXPECT_LT(t.time_average(0, kMonth), kPon);
}

TEST(AuctionMarket, ProducesExcursionsAboveOnDemand) {
  // Availability buyers bidding over p_on push the clearing price past it
  // when capacity tightens — the dynamics the hosting scheduler lives on.
  AuctionMarketParams tight;
  tight.capacity_units = 70.0;  // scarcer pool than the calm defaults
  const auto t = make(6, tight);
  const auto features = extract_features(t, kPon);
  EXPECT_GT(features.excursions_above_reference, 0);
  EXPECT_GT(features.max_over_reference, 1.0);
}

TEST(AuctionMarket, DeterministicPerSeed) {
  const auto a = make(7);
  const auto b = make(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].time, b.points()[i].time);
    EXPECT_DOUBLE_EQ(a.points()[i].price, b.points()[i].price);
  }
}

TEST(AuctionMarket, RejectsBadArguments) {
  sim::RngFactory f(1);
  auto rng = f.stream("x");
  AuctionMarketParams params;
  EXPECT_THROW(generate_auction_market(params, 0.0, kMonth, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_auction_market(params, kPon, 0, rng),
               std::invalid_argument);
  params.capacity_units = 0.0;
  EXPECT_THROW(generate_auction_market(params, kPon, kMonth, rng),
               std::invalid_argument);
}

TEST(AuctionMarket, DiurnalOnDemandLoadShapesPrices) {
  // Average price during the on-demand peak hours should exceed the trough
  // (capacity is scarcer when the on-demand side is busy).
  AuctionMarketParams params;
  params.od_load_min_fraction = 0.05;
  params.od_load_max_fraction = 0.75;
  const auto t = make(8, params);
  double peak = 0.0, trough = 0.0;
  int days = 0;
  for (sim::SimTime day = 0; day + kDay <= kMonth; day += kDay) {
    peak += t.time_average(day + sim::from_hours(18.0), day + sim::from_hours(21.0));
    trough +=
        t.time_average(day + sim::from_hours(6.0), day + sim::from_hours(9.0));
    ++days;
  }
  EXPECT_GT(peak / days, trough / days);
}

}  // namespace
}  // namespace spothost::trace
