#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spothost::trace {
namespace {

PriceTrace make_trace() {
  PriceTrace t;
  t.append(0, 0.061);
  t.append(120000, 0.125);
  t.append(240000, 0.0375);
  t.set_end(500000);
  return t;
}

TEST(Csv, RoundTripPreservesEverything) {
  const auto original = make_trace();
  std::stringstream ss;
  save_csv(original, ss);
  const auto loaded = load_csv(ss);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.end(), original.end());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.points()[i].time, original.points()[i].time);
    EXPECT_DOUBLE_EQ(loaded.points()[i].price, original.points()[i].price);
  }
}

TEST(Csv, OutputFormatIsStable) {
  PriceTrace t;
  t.append(0, 0.5);
  t.set_end(1000);
  std::stringstream ss;
  save_csv(t, ss);
  EXPECT_EQ(ss.str(), "time_ms,price_per_hour\n0,0.5\nend,1000\n");
}

TEST(Csv, RejectsMissingHeader) {
  std::stringstream ss("0,0.5\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsMissingComma) {
  std::stringstream ss("time_ms,price_per_hour\n1234\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsBadTimestamp) {
  std::stringstream ss("time_ms,price_per_hour\nabc,0.5\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsBadPrice) {
  std::stringstream ss("time_ms,price_per_hour\n0,zebra\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsTrailingJunkInPrice) {
  std::stringstream ss("time_ms,price_per_hour\n0,0.5x\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsNonPositivePrice) {
  std::stringstream ss("time_ms,price_per_hour\n0,-0.5\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsOutOfOrderRows) {
  std::stringstream ss("time_ms,price_per_hour\n100,0.5\n50,0.6\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsDataAfterEndMarker) {
  std::stringstream ss("time_ms,price_per_hour\n0,0.5\nend,100\n200,0.6\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsNoDataRows) {
  std::stringstream ss("time_ms,price_per_hour\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss("time_ms,price_per_hour\n0,0.5\n\n100,0.6\nend,200\n");
  const auto t = load_csv(ss);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Csv, ErrorMessagesCarryLineNumbers) {
  std::stringstream ss("time_ms,price_per_hour\n0,0.5\nbroken\n");
  try {
    load_csv(ss);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Csv, FileRoundTrip) {
  const auto original = make_trace();
  const std::string path = ::testing::TempDir() + "/spothost_trace_test.csv";
  save_csv_file(original, path);
  const auto loaded = load_csv_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.end(), original.end());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/nonexistent/nowhere.csv"), std::runtime_error);
}

}  // namespace
}  // namespace spothost::trace
