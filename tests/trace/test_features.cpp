#include "trace/features.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "trace/profiles.hpp"
#include "trace/synthetic.hpp"

namespace spothost::trace {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kMinute;

PriceTrace step_trace() {
  // 0.02 base; one 2 h excursion to 0.10; one 30 min excursion to 0.50.
  PriceTrace t;
  t.append(0, 0.02);
  t.append(10 * kHour, 0.10);
  t.append(12 * kHour, 0.02);
  t.append(20 * kHour, 0.50);
  t.append(20 * kHour + 30 * kMinute, 0.02);
  t.set_end(2 * kDay);
  return t;
}

TEST(Features, CountsAndMeasuresExcursions) {
  const auto f = extract_features(step_trace(), 0.06);
  EXPECT_EQ(f.excursions_above_reference, 2);
  EXPECT_NEAR(f.mean_excursion_minutes, (120.0 + 30.0) / 2.0, 1e-9);
  EXPECT_NEAR(f.max_over_reference, 0.50 / 0.06, 1e-9);
  EXPECT_NEAR(f.fraction_below_reference, 1.0 - 2.5 / 48.0, 1e-9);
}

TEST(Features, BasicMoments) {
  const auto f = extract_features(step_trace(), 0.06);
  EXPECT_DOUBLE_EQ(f.min_price, 0.02);
  EXPECT_DOUBLE_EQ(f.max_price, 0.50);
  EXPECT_GT(f.mean_price, 0.02);
  EXPECT_LT(f.mean_price, 0.06);
  EXPECT_NEAR(f.changes_per_day, 5.0 / 2.0, 1e-9);
}

TEST(Features, FlatTraceHasNoExcursionsAndFullAutocorrelationIsZero) {
  PriceTrace t;
  t.append(0, 0.03);
  t.set_end(2 * kDay);
  const auto f = extract_features(t, 0.06);
  EXPECT_EQ(f.excursions_above_reference, 0);
  EXPECT_DOUBLE_EQ(f.stddev, 0.0);
  // Constant series: correlation undefined -> reported as 0.
  EXPECT_DOUBLE_EQ(f.hourly_autocorrelation, 0.0);
}

TEST(Features, PersistentSeriesHasPositiveAutocorrelation) {
  // Slowly alternating 6-hour plateaus: strong 1-hour self-similarity.
  PriceTrace t;
  for (int i = 0; i < 8; ++i) {
    t.append(i * 6 * kHour, (i % 2 == 0) ? 0.02 : 0.05);
  }
  t.set_end(2 * kDay);
  const auto f = extract_features(t, 0.06);
  EXPECT_GT(f.hourly_autocorrelation, 0.5);
}

TEST(Features, DistanceIsZeroForIdenticalFingerprints) {
  const auto f = extract_features(step_trace(), 0.06);
  EXPECT_DOUBLE_EQ(feature_distance(f, f), 0.0);
}

TEST(Features, DistanceSeparatesCalmFromSpiky) {
  sim::RngFactory factory(9);
  const double pon = 0.06;
  auto r1 = factory.stream("calm");
  MarketProfile calm = profile_for("eu-west-1a", "small");
  const auto calm_trace =
      SyntheticSpotModel::generate(calm, pon, 14 * kDay, r1);
  auto r2 = factory.stream("spiky");
  MarketProfile spiky = profile_for("us-east-1a", "small");
  const auto spiky_trace =
      SyntheticSpotModel::generate(spiky, pon, 14 * kDay, r2);
  auto r3 = factory.stream("spiky2");
  const auto spiky_trace2 =
      SyntheticSpotModel::generate(spiky, pon, 14 * kDay, r3);

  const auto fc = extract_features(calm_trace, pon);
  const auto fs = extract_features(spiky_trace, pon);
  const auto fs2 = extract_features(spiky_trace2, pon);
  // Same-profile fingerprints are closer than cross-profile ones.
  EXPECT_LT(feature_distance(fs, fs2), feature_distance(fs, fc));
}

TEST(Features, RejectsBadInput) {
  EXPECT_THROW(extract_features(PriceTrace{}, 0.06), std::invalid_argument);
  EXPECT_THROW(extract_features(step_trace(), 0.0), std::invalid_argument);
}

TEST(Features, WindowedOverFullRangeMatchesUnwindowed) {
  const auto t = step_trace();
  const auto full = extract_features(t, 0.06);
  const auto windowed = extract_features(t, 0.06, t.start(), t.end());
  EXPECT_EQ(windowed.excursions_above_reference,
            full.excursions_above_reference);
  EXPECT_DOUBLE_EQ(windowed.mean_excursion_minutes,
                   full.mean_excursion_minutes);
  EXPECT_DOUBLE_EQ(windowed.fraction_below_reference,
                   full.fraction_below_reference);
  EXPECT_DOUBLE_EQ(windowed.min_price, full.min_price);
  EXPECT_DOUBLE_EQ(windowed.max_price, full.max_price);
  EXPECT_DOUBLE_EQ(windowed.mean_price, full.mean_price);
  EXPECT_DOUBLE_EQ(windowed.changes_per_day, full.changes_per_day);
}

TEST(Features, WindowedCountsOnlyWindowExcursions) {
  // Both excursions of step_trace() fall in the first day; the second day
  // is flat at 0.02.
  const auto t = step_trace();
  const auto day2 = extract_features(t, 0.06, kDay, 2 * kDay);
  EXPECT_EQ(day2.excursions_above_reference, 0);
  EXPECT_DOUBLE_EQ(day2.fraction_below_reference, 1.0);
  EXPECT_DOUBLE_EQ(day2.max_price, 0.02);

  // A window holding exactly the 2 h excursion sees one excursion covering
  // the whole window.
  const auto spike = extract_features(t, 0.06, 10 * kHour, 12 * kHour);
  EXPECT_EQ(spike.excursions_above_reference, 1);
  EXPECT_NEAR(spike.mean_excursion_minutes, 120.0, 1e-9);
  EXPECT_DOUBLE_EQ(spike.fraction_below_reference, 0.0);
}

TEST(Features, WindowedRejectsBadWindows) {
  const auto t = step_trace();
  EXPECT_THROW(extract_features(t, 0.06, -kHour, kDay), std::invalid_argument);
  EXPECT_THROW(extract_features(t, 0.06, 0, t.end() + kHour),
               std::invalid_argument);
  EXPECT_THROW(extract_features(t, 0.06, kDay, kDay), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::trace
