#include "trace/price_trace.hpp"

#include <gtest/gtest.h>

namespace spothost::trace {
namespace {

using sim::kHour;
using sim::kMinute;

PriceTrace make_simple() {
  // 0.10 on [0, 10min), 0.30 on [10min, 30min), 0.05 on [30min, 1h)
  PriceTrace t;
  t.append(0, 0.10);
  t.append(10 * kMinute, 0.30);
  t.append(30 * kMinute, 0.05);
  t.set_end(kHour);
  return t;
}

TEST(PriceTrace, PriceAtLooksUpGoverningSegment) {
  const auto t = make_simple();
  EXPECT_DOUBLE_EQ(t.price_at(0), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute - 1), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute), 0.30);
  EXPECT_DOUBLE_EQ(t.price_at(kHour - 1), 0.05);
}

TEST(PriceTrace, QueryOutsideWindowThrows) {
  const auto t = make_simple();
  EXPECT_THROW(t.price_at(-1), std::out_of_range);
  EXPECT_THROW(t.price_at(kHour), std::out_of_range);
}

TEST(PriceTrace, AppendRejectsNonIncreasingTime) {
  PriceTrace t;
  t.append(100, 0.1);
  EXPECT_THROW(t.append(100, 0.2), std::invalid_argument);
  EXPECT_THROW(t.append(50, 0.2), std::invalid_argument);
}

TEST(PriceTrace, AppendRejectsBadPrice) {
  PriceTrace t;
  EXPECT_THROW(t.append(0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.append(0, -0.1), std::invalid_argument);
}

TEST(PriceTrace, EqualConsecutivePricesCoalesce) {
  PriceTrace t;
  t.append(0, 0.1);
  t.append(100, 0.1);  // coalesced
  t.append(200, 0.2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_GE(t.end(), 200);
}

TEST(PriceTrace, SetEndBeforeLastPointThrows) {
  auto t = make_simple();
  EXPECT_THROW(t.set_end(20 * kMinute), std::invalid_argument);
}

TEST(PriceTrace, NextChangeAfterFindsFollowingEvent) {
  const auto t = make_simple();
  const auto next = t.next_change_after(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->time, 10 * kMinute);
  EXPECT_DOUBLE_EQ(next->price, 0.30);
  EXPECT_FALSE(t.next_change_after(30 * kMinute).has_value());
}

TEST(PriceTrace, NextChangeAtExactEventTimeIsStrictlyAfter) {
  const auto t = make_simple();
  const auto next = t.next_change_after(10 * kMinute);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->time, 30 * kMinute);
}

TEST(PriceTrace, TimeAverageIsExactIntegral) {
  const auto t = make_simple();
  // (0.10*10 + 0.30*20 + 0.05*30) / 60 = (1 + 6 + 1.5)/60
  EXPECT_NEAR(t.time_average(0, kHour), 8.5 / 60.0, 1e-12);
}

TEST(PriceTrace, TimeAverageSubInterval) {
  const auto t = make_simple();
  // [5min, 15min): 5min at 0.10 + 5min at 0.30
  EXPECT_NEAR(t.time_average(5 * kMinute, 15 * kMinute), 0.20, 1e-12);
}

TEST(PriceTrace, FractionBelowThreshold) {
  const auto t = make_simple();
  // below 0.2: [0,10) and [30,60) => 40 of 60 minutes
  EXPECT_NEAR(t.fraction_below(0.2, 0, kHour), 40.0 / 60.0, 1e-12);
  EXPECT_NEAR(t.fraction_below(0.01, 0, kHour), 0.0, 1e-12);
  EXPECT_NEAR(t.fraction_below(1.0, 0, kHour), 1.0, 1e-12);
}

TEST(PriceTrace, MinMaxOverWindow) {
  const auto t = make_simple();
  EXPECT_DOUBLE_EQ(t.min_price(0, kHour), 0.05);
  EXPECT_DOUBLE_EQ(t.max_price(0, kHour), 0.30);
  EXPECT_DOUBLE_EQ(t.max_price(0, 5 * kMinute), 0.10);
}

TEST(PriceTrace, SampleProducesUniformGrid) {
  const auto t = make_simple();
  const auto xs = t.sample(0, kHour, 10 * kMinute);
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_DOUBLE_EQ(xs[0], 0.10);
  EXPECT_DOUBLE_EQ(xs[1], 0.30);
  EXPECT_DOUBLE_EQ(xs[3], 0.05);
}

TEST(PriceTrace, ConstructFromPointsValidates) {
  std::vector<PricePoint> pts{{0, 0.1}, {100, 0.2}};
  const PriceTrace t(pts, 200);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), 200);
}

TEST(PriceTrace, EmptyTraceStartThrows) {
  const PriceTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.start(), std::logic_error);
}

TEST(PriceTrace, EmptyIntervalQueriesThrow) {
  const auto t = make_simple();
  EXPECT_THROW(t.time_average(10, 10), std::invalid_argument);
  EXPECT_THROW(t.fraction_below(0.1, 20, 10), std::invalid_argument);
  EXPECT_THROW(t.sample(0, kHour, 0), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::trace
