#include "trace/price_trace.hpp"

#include <gtest/gtest.h>

namespace spothost::trace {
namespace {

using sim::kHour;
using sim::kMinute;

PriceTrace make_simple() {
  // 0.10 on [0, 10min), 0.30 on [10min, 30min), 0.05 on [30min, 1h)
  PriceTrace t;
  t.append(0, 0.10);
  t.append(10 * kMinute, 0.30);
  t.append(30 * kMinute, 0.05);
  t.set_end(kHour);
  return t;
}

TEST(PriceTrace, PriceAtLooksUpGoverningSegment) {
  const auto t = make_simple();
  EXPECT_DOUBLE_EQ(t.price_at(0), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute - 1), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute), 0.30);
  EXPECT_DOUBLE_EQ(t.price_at(kHour - 1), 0.05);
}

TEST(PriceTrace, QueryOutsideWindowThrows) {
  const auto t = make_simple();
  EXPECT_THROW(t.price_at(-1), std::out_of_range);
  EXPECT_THROW(t.price_at(kHour), std::out_of_range);
}

TEST(PriceTrace, AppendRejectsNonIncreasingTime) {
  PriceTrace t;
  t.append(100, 0.1);
  EXPECT_THROW(t.append(100, 0.2), std::invalid_argument);
  EXPECT_THROW(t.append(50, 0.2), std::invalid_argument);
}

TEST(PriceTrace, AppendRejectsBadPrice) {
  PriceTrace t;
  EXPECT_THROW(t.append(0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.append(0, -0.1), std::invalid_argument);
}

TEST(PriceTrace, EqualConsecutivePricesCoalesce) {
  PriceTrace t;
  t.append(0, 0.1);
  t.append(100, 0.1);  // coalesced
  t.append(200, 0.2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_GE(t.end(), 200);
}

TEST(PriceTrace, SetEndBeforeLastPointThrows) {
  auto t = make_simple();
  EXPECT_THROW(t.set_end(20 * kMinute), std::invalid_argument);
}

TEST(PriceTrace, NextChangeAfterFindsFollowingEvent) {
  const auto t = make_simple();
  const auto next = t.next_change_after(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->time, 10 * kMinute);
  EXPECT_DOUBLE_EQ(next->price, 0.30);
  EXPECT_FALSE(t.next_change_after(30 * kMinute).has_value());
}

TEST(PriceTrace, NextChangeAtExactEventTimeIsStrictlyAfter) {
  const auto t = make_simple();
  const auto next = t.next_change_after(10 * kMinute);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->time, 30 * kMinute);
}

TEST(PriceTrace, TimeAverageIsExactIntegral) {
  const auto t = make_simple();
  // (0.10*10 + 0.30*20 + 0.05*30) / 60 = (1 + 6 + 1.5)/60
  EXPECT_NEAR(t.time_average(0, kHour), 8.5 / 60.0, 1e-12);
}

TEST(PriceTrace, TimeAverageSubInterval) {
  const auto t = make_simple();
  // [5min, 15min): 5min at 0.10 + 5min at 0.30
  EXPECT_NEAR(t.time_average(5 * kMinute, 15 * kMinute), 0.20, 1e-12);
}

TEST(PriceTrace, FractionBelowThreshold) {
  const auto t = make_simple();
  // below 0.2: [0,10) and [30,60) => 40 of 60 minutes
  EXPECT_NEAR(t.fraction_below(0.2, 0, kHour), 40.0 / 60.0, 1e-12);
  EXPECT_NEAR(t.fraction_below(0.01, 0, kHour), 0.0, 1e-12);
  EXPECT_NEAR(t.fraction_below(1.0, 0, kHour), 1.0, 1e-12);
}

TEST(PriceTrace, MinMaxOverWindow) {
  const auto t = make_simple();
  EXPECT_DOUBLE_EQ(t.min_price(0, kHour), 0.05);
  EXPECT_DOUBLE_EQ(t.max_price(0, kHour), 0.30);
  EXPECT_DOUBLE_EQ(t.max_price(0, 5 * kMinute), 0.10);
}

TEST(PriceTrace, SampleProducesUniformGrid) {
  const auto t = make_simple();
  const auto xs = t.sample(0, kHour, 10 * kMinute);
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_DOUBLE_EQ(xs[0], 0.10);
  EXPECT_DOUBLE_EQ(xs[1], 0.30);
  EXPECT_DOUBLE_EQ(xs[3], 0.05);
}

TEST(PriceTrace, ConstructFromPointsValidates) {
  std::vector<PricePoint> pts{{0, 0.1}, {100, 0.2}};
  const PriceTrace t(pts, 200);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), 200);
}

TEST(PriceTrace, EmptyTraceStartThrows) {
  const PriceTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.start(), std::logic_error);
}

TEST(PriceTrace, EmptyIntervalQueriesThrow) {
  const auto t = make_simple();
  EXPECT_THROW(t.time_average(10, 10), std::invalid_argument);
  EXPECT_THROW(t.fraction_below(0.1, 20, 10), std::invalid_argument);
  EXPECT_THROW(t.sample(0, kHour, 0), std::invalid_argument);
}

// Regression: these five used to silently extrapolate the last price past
// end() (sample alone threw, and only mid-grid). Out-of-window intervals
// must throw out_of_range consistently and up front.
TEST(PriceTrace, IntervalQueriesPastEndThrowOutOfRange) {
  const auto t = make_simple();
  EXPECT_THROW(t.time_average(0, kHour + 1), std::out_of_range);
  EXPECT_THROW(t.fraction_below(0.2, 0, kHour + 1), std::out_of_range);
  EXPECT_THROW(t.min_price(30 * kMinute, 2 * kHour), std::out_of_range);
  EXPECT_THROW(t.max_price(30 * kMinute, 2 * kHour), std::out_of_range);
  EXPECT_THROW(t.sample(0, kHour + 1, 10 * kMinute), std::out_of_range);
}

TEST(PriceTrace, IntervalQueriesUpToEndAreAllowed) {
  const auto t = make_simple();
  EXPECT_NEAR(t.time_average(0, kHour), 8.5 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min_price(0, kHour), 0.05);
  EXPECT_DOUBLE_EQ(t.max_price(0, kHour), 0.30);
  EXPECT_NEAR(t.fraction_below(1.0, 0, kHour), 1.0, 1e-12);
  EXPECT_EQ(t.sample(0, kHour, 10 * kMinute).size(), 6u);
}

TEST(PriceTrace, PointQueriesAtAndPastEndThrow) {
  const auto t = make_simple();
  EXPECT_THROW(t.price_at(kHour), std::out_of_range);
  EXPECT_THROW(t.price_at(kHour + 1), std::out_of_range);
  EXPECT_FALSE(t.next_change_after(kHour).has_value());
  PriceCursor cursor;
  EXPECT_THROW(t.price_at(kHour, cursor), std::out_of_range);
}

TEST(PriceTrace, EmptyTraceQueries) {
  const PriceTrace t;
  EXPECT_THROW(t.price_at(0), std::out_of_range);
  EXPECT_FALSE(t.next_change_after(0).has_value());
  EXPECT_THROW(t.time_average(0, 10), std::out_of_range);  // past end() == 0
  EXPECT_THROW(t.sample(0, 10, 5), std::out_of_range);
}

// A trace of many distinct segments, for exercising the cursor's linear
// scan, gallop, and rewind paths. Prices cycle so no two consecutive points
// coalesce.
PriceTrace make_long() {
  PriceTrace t;
  for (int i = 0; i < 120; ++i) {
    t.append(i * kMinute, 0.10 + 0.01 * (i % 5));
  }
  t.set_end(2 * kHour);
  return t;
}

TEST(PriceCursorTest, MonotoneScanMatchesCursorlessLookups) {
  const auto t = make_long();
  PriceCursor cursor;
  for (sim::SimTime q = t.start(); q < t.end(); q += 30 * sim::kSecond) {
    EXPECT_DOUBLE_EQ(t.price_at(q, cursor), t.price_at(q)) << "at " << q;
  }
}

TEST(PriceCursorTest, RewindAfterBackwardJump) {
  const auto t = make_long();
  PriceCursor cursor;
  EXPECT_DOUBLE_EQ(t.price_at(100 * kMinute, cursor), t.price_at(100 * kMinute));
  // Backward jump: the cursor is far ahead; the rewind binary search must
  // still find the governing segment.
  EXPECT_DOUBLE_EQ(t.price_at(3 * kMinute, cursor), t.price_at(3 * kMinute));
  // And forward again from the rewound position.
  EXPECT_DOUBLE_EQ(t.price_at(90 * kMinute, cursor), t.price_at(90 * kMinute));
}

TEST(PriceCursorTest, FarForwardJumpGallopsPastLinearScan) {
  const auto t = make_long();
  PriceCursor cursor;
  EXPECT_DOUBLE_EQ(t.price_at(0, cursor), t.price_at(0));
  // > kLinearScanLimit segments ahead: exercises the binary-search tail.
  EXPECT_DOUBLE_EQ(t.price_at(119 * kMinute, cursor), t.price_at(119 * kMinute));
}

TEST(PriceCursorTest, StaleCursorFromLongerTraceDegradesGracefully) {
  const auto long_trace = make_long();
  PriceCursor cursor;
  (void)long_trace.price_at(119 * kMinute, cursor);  // park the cursor deep
  const auto short_trace = make_simple();            // only 3 points
  // Out-of-bounds remembered index must be ignored, not dereferenced.
  EXPECT_DOUBLE_EQ(short_trace.price_at(15 * kMinute, cursor), 0.30);
  cursor.reset();
  EXPECT_DOUBLE_EQ(long_trace.price_at(0, cursor), 0.10);
}

TEST(PriceCursorTest, IntervalStatsWithSharedCursorMatchStateless) {
  const auto t = make_long();
  PriceCursor cursor;
  // Consecutive windows, the daily-table access pattern.
  for (int w = 0; w < 8; ++w) {
    const sim::SimTime from = w * 15 * kMinute;
    const sim::SimTime to = (w + 1) * 15 * kMinute;
    EXPECT_DOUBLE_EQ(t.time_average(from, to, cursor), t.time_average(from, to));
    EXPECT_DOUBLE_EQ(t.fraction_below(0.12, from, to, cursor),
                     t.fraction_below(0.12, from, to));
    EXPECT_DOUBLE_EQ(t.min_price(from, to, cursor), t.min_price(from, to));
    EXPECT_DOUBLE_EQ(t.max_price(from, to, cursor), t.max_price(from, to));
    EXPECT_EQ(t.sample(from, to, kMinute, cursor), t.sample(from, to, kMinute));
  }
}

TEST(PriceCursorTest, NextChangeAfterWithCursorMatchesCursorless) {
  const auto t = make_long();
  PriceCursor cursor;
  sim::SimTime q = t.start();
  while (true) {
    const auto with = t.next_change_after(q, cursor);
    const auto without = t.next_change_after(q);
    ASSERT_EQ(with.has_value(), without.has_value());
    if (!with) break;
    EXPECT_EQ(with->time, without->time);
    EXPECT_DOUBLE_EQ(with->price, without->price);
    q = with->time;
  }
}

TEST(PriceTrace, CoalescedPointBoundaries) {
  PriceTrace t;
  t.append(0, 0.10);
  t.append(10 * kMinute, 0.10);  // coalesced away, but extends end()
  t.append(20 * kMinute, 0.20);
  t.set_end(30 * kMinute);
  ASSERT_EQ(t.size(), 2u);

  PriceCursor cursor;
  // The coalesced instant is mid-segment: same price on both sides, and
  // next_change_after must skip straight to the real change.
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute - 1, cursor), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(10 * kMinute, cursor), 0.10);
  const auto next = t.next_change_after(10 * kMinute, cursor);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->time, 20 * kMinute);
  EXPECT_NEAR(t.time_average(0, 30 * kMinute, cursor),
              (0.10 * 20 + 0.20 * 10) / 30.0, 1e-12);
}

}  // namespace
}  // namespace spothost::trace
