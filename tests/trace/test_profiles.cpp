#include "trace/profiles.hpp"

#include <gtest/gtest.h>

#include <string>

namespace spothost::trace {
namespace {

TEST(Profiles, FourCanonicalRegions) {
  const auto regions = canonical_regions();
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(regions[0], "us-east-1a");
  EXPECT_EQ(regions[3], "eu-west-1a");
}

TEST(Profiles, FourCanonicalSizes) {
  const auto sizes = canonical_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], "small");
  EXPECT_EQ(sizes[3], "xlarge");
}

TEST(Profiles, UnknownRegionThrows) {
  EXPECT_THROW(profile_for("mars-1a", "small"), std::invalid_argument);
}

TEST(Profiles, UnknownSizeThrows) {
  EXPECT_THROW(profile_for("us-east-1a", "gargantuan"), std::invalid_argument);
}

TEST(Profiles, UsEastCheaperThanEuWest) {
  // Sec. 4.5: us-east markets are cheaper relative to on-demand.
  const auto east = profile_for("us-east-1a", "small");
  const auto eu = profile_for("eu-west-1a", "small");
  EXPECT_LT(east.base_fraction, eu.base_fraction);
}

TEST(Profiles, UsEastMoreVolatileThanEuWest) {
  // Fig. 10: us-east prices vary more.
  const auto east = profile_for("us-east-1a", "small");
  const auto eu = profile_for("eu-west-1a", "small");
  EXPECT_GT(east.spike_rate_per_day, eu.spike_rate_per_day);
  EXPECT_GT(east.base_jitter_sigma, eu.base_jitter_sigma);
  EXPECT_LT(east.spike_pareto_alpha, eu.spike_pareto_alpha);  // heavier tail
}

TEST(Profiles, LargerSizesSpikier) {
  const auto small = profile_for("us-east-1a", "small");
  const auto xlarge = profile_for("us-east-1a", "xlarge");
  EXPECT_GT(xlarge.spike_rate_per_day, small.spike_rate_per_day);
  EXPECT_LT(xlarge.base_fraction, small.base_fraction);
}

TEST(Profiles, SharedSpikeRatePositiveEverywhere) {
  for (const auto region : canonical_regions()) {
    EXPECT_GT(region_shared_spike_rate(std::string(region)), 0.0);
  }
}

class ProfileSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(ProfileSweep, AllProfilesAreSane) {
  const auto& [region, size] = GetParam();
  const auto p = profile_for(region, size);
  EXPECT_GT(p.base_fraction, 0.0);
  EXPECT_LT(p.base_fraction, 1.0);  // spot base must undercut on-demand
  EXPECT_GT(p.spike_rate_per_day, 0.0);
  EXPECT_GT(p.spike_pareto_alpha, 0.0);
  EXPECT_GT(p.spike_pareto_xm, 0.0);
  EXPECT_GE(p.shared_spike_fraction, 0.0);
  EXPECT_LE(p.shared_spike_fraction, 1.0);
  EXPECT_GT(p.spike_duration_mean_minutes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMarkets, ProfileSweep,
    ::testing::Combine(::testing::Values("us-east-1a", "us-east-1b", "us-west-1a",
                                         "eu-west-1a"),
                       ::testing::Values("small", "medium", "large", "xlarge")));

}  // namespace
}  // namespace spothost::trace
