#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace spothost::trace {
namespace {

using sim::kHour;
using sim::kMinute;

TEST(Stats, MeanOfConstants) {
  const std::array<double, 4> xs{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(Stats, MeanRejectsEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
}

TEST(Stats, StddevKnownValue) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  // population stddev of 1..4 = sqrt(1.25)
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::array<double, 5> xs{1, 2, 3, 4, 5};
  const std::array<double, 5> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::array<double, 5> xs{1, 2, 3, 4, 5};
  const std::array<double, 5> ys{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 3> ys{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 2> ys{1, 2};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stats, TraceStddevExactOnStepFunction) {
  PriceTrace t;
  t.append(0, 1.0);
  t.append(30 * kMinute, 3.0);
  t.set_end(kHour);
  // Half the time at 1, half at 3: mean 2, variance 1.
  EXPECT_NEAR(trace_stddev(t, 0, kHour), 1.0, 1e-12);
}

TEST(Stats, TraceStddevZeroForConstantTrace) {
  PriceTrace t;
  t.append(0, 0.5);
  t.set_end(kHour);
  EXPECT_NEAR(trace_stddev(t, 0, kHour), 0.0, 1e-12);
}

TEST(Stats, TraceCorrelationIdenticalTracesIsOne) {
  PriceTrace t;
  t.append(0, 1.0);
  t.append(20 * kMinute, 2.0);
  t.append(40 * kMinute, 0.5);
  t.set_end(kHour);
  EXPECT_NEAR(trace_correlation(t, t, kMinute), 1.0, 1e-12);
}

TEST(Stats, TraceCorrelationDisjointWindowsThrows) {
  PriceTrace a;
  a.append(0, 1.0);
  a.set_end(kMinute);
  PriceTrace b;
  b.append(2 * kMinute, 1.0);
  b.set_end(3 * kMinute);
  EXPECT_THROW(trace_correlation(a, b), std::invalid_argument);
}

TEST(Stats, MeanPairwiseCorrelationAveragesPairs) {
  PriceTrace a;
  a.append(0, 1.0);
  a.append(30 * kMinute, 2.0);
  a.set_end(kHour);
  PriceTrace b = a;   // corr(a,b) = 1
  PriceTrace c;       // anti-correlated
  c.append(0, 2.0);
  c.append(30 * kMinute, 1.0);
  c.set_end(kHour);
  const std::array<PriceTrace, 3> traces{a, b, c};
  // pairs: (a,b)=1, (a,c)=-1, (b,c)=-1 => mean = -1/3
  EXPECT_NEAR(mean_pairwise_correlation(traces, kMinute), -1.0 / 3.0, 1e-9);
}

TEST(Stats, MeanPairwiseNeedsTwo) {
  const std::array<PriceTrace, 1> one{PriceTrace{}};
  EXPECT_THROW(mean_pairwise_correlation(one), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::trace
