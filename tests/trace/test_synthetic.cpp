#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "trace/stats.hpp"

namespace spothost::trace {
namespace {

using sim::kDay;
using sim::kHour;

constexpr double kPon = 0.24;  // large on-demand price
constexpr sim::SimTime kMonth = 30 * kDay;

MarketProfile default_profile() { return MarketProfile{}; }

TEST(Synthetic, TraceCoversRequestedWindow) {
  sim::RngFactory f(1);
  auto rng = f.stream("m");
  const auto t = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, rng);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), kMonth);
}

TEST(Synthetic, PricesArePositive) {
  sim::RngFactory f(2);
  auto rng = f.stream("m");
  const auto t = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, rng);
  for (const auto& p : t.points()) {
    EXPECT_GT(p.price, 0.0);
  }
}

TEST(Synthetic, SameSeedReproducesExactly) {
  sim::RngFactory f(3);
  auto r1 = f.stream("m");
  auto r2 = f.stream("m");
  const auto a = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, r1);
  const auto b = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].time, b.points()[i].time);
    EXPECT_DOUBLE_EQ(a.points()[i].price, b.points()[i].price);
  }
}

TEST(Synthetic, MeanPriceNearBaseFraction) {
  // Calm-regime mean should keep the month average well below p_on.
  sim::RngFactory f(4);
  auto rng = f.stream("m");
  MarketProfile p = default_profile();
  p.base_fraction = 0.30;
  const auto t = SyntheticSpotModel::generate(p, kPon, kMonth, rng);
  const double avg = t.time_average(0, kMonth);
  EXPECT_GT(avg, 0.15 * kPon);
  EXPECT_LT(avg, 0.60 * kPon);
}

TEST(Synthetic, MostTimeSpentBelowOnDemand) {
  sim::RngFactory f(5);
  auto rng = f.stream("m");
  const auto t = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, rng);
  EXPECT_GT(t.fraction_below(kPon, 0, kMonth), 0.90);
}

TEST(Synthetic, SpikesExceedProactiveBidOccasionally) {
  // With a us-east-like heavy tail, a few spikes per quarter must blow past
  // 4x p_on — the trigger for forced migrations under proactive bidding.
  sim::RngFactory f(6);
  auto rng = f.stream("m");
  MarketProfile p = default_profile();
  p.spike_pareto_xm = 0.5;
  p.spike_pareto_alpha = 0.85;
  p.spike_rate_per_day = 0.45;
  const auto t = SyntheticSpotModel::generate(p, kPon, 3 * kMonth, rng);
  EXPECT_GT(t.max_price(0, 3 * kMonth), 4.0 * kPon);
}

TEST(Synthetic, SpikeMagnitudeIsCapped) {
  MarketProfile p = default_profile();
  p.spike_cap_multiple = 6.0;
  sim::RngFactory f(7);
  auto rng = f.stream("m");
  const auto t = SyntheticSpotModel::generate(p, kPon, 6 * kMonth, rng);
  EXPECT_LE(t.max_price(0, 6 * kMonth), 6.0 * kPon * 1.0001);
}

TEST(Synthetic, ZeroSpikeRateYieldsCalmTrace) {
  MarketProfile p = default_profile();
  p.spike_rate_per_day = 0.0;
  p.shared_spike_fraction = 0.0;
  p.base_jitter_sigma = 0.05;
  sim::RngFactory f(8);
  auto rng = f.stream("m");
  const auto t = SyntheticSpotModel::generate(p, kPon, kMonth, rng);
  EXPECT_LT(t.max_price(0, kMonth), kPon);
}

TEST(Synthetic, SharedSpikesInduceCorrelation) {
  MarketProfile p = default_profile();
  p.shared_spike_fraction = 0.9;
  p.spike_rate_per_day = 0.0;  // only shared spikes
  sim::RngFactory f(9);
  auto shared_rng = f.stream("shared");
  const auto shared = SyntheticSpotModel::generate_shared_spikes(2.0, p, kMonth,
                                                                 shared_rng);
  auto r1 = f.stream("m1");
  auto r2 = f.stream("m2");
  MarketProfile calm = p;
  calm.base_jitter_sigma = 0.02;
  const auto a = SyntheticSpotModel::generate(calm, kPon, kMonth, r1, &shared);
  const auto b = SyntheticSpotModel::generate(calm, kPon, kMonth, r2, &shared);

  auto r3 = f.stream("m3");
  auto r4 = f.stream("m4");
  MarketProfile indep = calm;
  indep.shared_spike_fraction = 0.0;
  indep.spike_rate_per_day = 2.0;
  const auto c = SyntheticSpotModel::generate(indep, kPon, kMonth, r3);
  const auto d = SyntheticSpotModel::generate(indep, kPon, kMonth, r4);

  const double corr_shared = trace_correlation(a, b);
  const double corr_indep = trace_correlation(c, d);
  EXPECT_GT(corr_shared, corr_indep + 0.1);
}

TEST(Synthetic, SharedScheduleScalesWithConsumerPrice) {
  // The same shared schedule must produce proportionally larger spikes in a
  // pricier market.
  MarketProfile p = default_profile();
  p.shared_spike_fraction = 1.0;
  p.spike_rate_per_day = 0.0;
  p.base_jitter_sigma = 0.0;
  sim::RngFactory f(10);
  auto shared_rng = f.stream("shared");
  const auto shared =
      SyntheticSpotModel::generate_shared_spikes(3.0, p, kMonth, shared_rng);
  auto r1 = f.stream("a");
  auto r2 = f.stream("a");  // identical adoption decisions
  const auto small = SyntheticSpotModel::generate(p, 0.06, kMonth, r1, &shared);
  const auto large = SyntheticSpotModel::generate(p, 0.24, kMonth, r2, &shared);
  EXPECT_NEAR(large.max_price(0, kMonth) / small.max_price(0, kMonth), 4.0, 0.2);
}

TEST(Synthetic, RejectsBadArguments) {
  sim::RngFactory f(11);
  auto rng = f.stream("m");
  EXPECT_THROW(SyntheticSpotModel::generate(default_profile(), kPon, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(SyntheticSpotModel::generate(default_profile(), 0.0, kMonth, rng),
               std::invalid_argument);
}

class SyntheticSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSeedSweep, InvariantsHoldAcrossSeeds) {
  sim::RngFactory f(GetParam());
  auto rng = f.stream("sweep");
  const auto t = SyntheticSpotModel::generate(default_profile(), kPon, kMonth, rng);
  EXPECT_EQ(t.end(), kMonth);
  sim::SimTime prev = -1;
  for (const auto& pt : t.points()) {
    EXPECT_GT(pt.time, prev);
    EXPECT_GT(pt.price, 0.0);
    prev = pt.time;
  }
  // Step function has no redundant points (coalescing worked).
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_NE(t.points()[i].price, t.points()[i - 1].price);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u, 777777u,
                                           0xDEADBEEFu));

}  // namespace
}  // namespace spothost::trace
