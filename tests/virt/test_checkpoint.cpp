#include "virt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spothost::virt {
namespace {

VmSpec spec(double memory_gb = 2.0, double dirty = 30.0, double ws = 512.0) {
  VmSpec s;
  s.memory_gb = memory_gb;
  s.dirty_rate_mb_s = dirty;
  s.working_set_mb = ws;
  return s;
}

TEST(Checkpoint, FlushAlwaysWithinBound) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  for (const double ws : {64.0, 256.0, 512.0, 4096.0}) {
    EXPECT_LE(ck.flush_time_s(spec(2.0, 30.0, ws)), 10.0 + 1e-9);
  }
}

TEST(Checkpoint, IncrementCapIsTauTimesRate) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  EXPECT_DOUBLE_EQ(ck.max_incremental_mb(spec(2.0, 30.0, 4096.0)), 360.0);
}

TEST(Checkpoint, SmallWorkingSetCapsIncrement) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  EXPECT_DOUBLE_EQ(ck.max_incremental_mb(spec(2.0, 30.0, 128.0)), 128.0);
}

TEST(Checkpoint, PeriodAdaptsToDirtyRate) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  // cap = 360 MB; dirty 30 MB/s => period 12 s; dirty 60 MB/s => 6 s.
  EXPECT_NEAR(ck.checkpoint_period_s(spec(2.0, 30.0, 4096.0)), 12.0, 1e-9);
  EXPECT_NEAR(ck.checkpoint_period_s(spec(2.0, 60.0, 4096.0)), 6.0, 1e-9);
}

TEST(Checkpoint, IdleGuestCheckpointsLazily) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  EXPECT_TRUE(std::isinf(ck.checkpoint_period_s(spec(2.0, 0.0, 512.0))));
}

TEST(Checkpoint, FullCheckpointTimeScalesWithMemory) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  // Table 2: ~28 s/GB write rate.
  EXPECT_NEAR(ck.full_checkpoint_time_s(spec(1.0)), 28.4, 0.5);
  EXPECT_NEAR(ck.full_checkpoint_time_s(spec(2.0)), 56.9, 1.0);
}

TEST(Checkpoint, BackgroundOverheadFractionBounded) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  const double f = ck.background_overhead_fraction(spec(2.0, 30.0, 4096.0));
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
  // 360 MB per 12 s at 36 MB/s = 10 s of writing per 12 s.
  EXPECT_NEAR(f, 10.0 / 12.0, 1e-9);
}

TEST(Checkpoint, ZeroOverheadWhenIdle) {
  const BoundedCheckpointer ck(CheckpointParams{10.0, 36.0});
  EXPECT_DOUBLE_EQ(ck.background_overhead_fraction(spec(2.0, 0.0)), 0.0);
}

TEST(Checkpoint, RejectsBadParams) {
  EXPECT_THROW(BoundedCheckpointer(CheckpointParams{0.0, 36.0}),
               std::invalid_argument);
  EXPECT_THROW(BoundedCheckpointer(CheckpointParams{10.0, 0.0}),
               std::invalid_argument);
}

class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, BoundHonouredAcrossTaus) {
  const double tau = GetParam();
  const BoundedCheckpointer ck(CheckpointParams{tau, 36.0});
  for (const double dirty : {1.0, 10.0, 50.0, 200.0}) {
    const auto s = spec(2.0, dirty, 8192.0);
    EXPECT_LE(ck.flush_time_s(s), tau + 1e-9)
        << "tau=" << tau << " dirty=" << dirty;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, TauSweep, ::testing::Values(1.0, 5.0, 10.0, 30.0,
                                                           120.0));

}  // namespace
}  // namespace spothost::virt
