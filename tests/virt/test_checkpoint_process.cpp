#include "virt/checkpoint_process.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace spothost::virt {
namespace {

using sim::kHour;
using sim::kMinute;
using sim::kSecond;

VmSpec spec(double memory_gb = 2.0, double dirty = 30.0, double ws = 2048.0) {
  VmSpec s;
  s.memory_gb = memory_gb;
  s.dirty_rate_mb_s = dirty;
  s.working_set_mb = ws;
  return s;
}

const CheckpointParams kParams{10.0, 36.0};

TEST(CheckpointProcess, InitialFullCheckpointTakesMemoryOverRate) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  cp.start();
  EXPECT_TRUE(cp.write_in_progress());
  EXPECT_FALSE(cp.initial_checkpoint_done());
  sim.run_until(sim::from_seconds(2048.0 / 36.0) + kSecond);
  EXPECT_TRUE(cp.initial_checkpoint_done());
  EXPECT_EQ(cp.completed_checkpoints(), 1);
}

TEST(CheckpointProcess, FlushBoundHoldsAtAllTimes) {
  // The core Yank invariant: after the initial checkpoint, sampling the
  // flush time at arbitrary instants never exceeds tau.
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  cp.start();
  sim.run_until(2 * kMinute);  // initial done (~57 s)
  ASSERT_TRUE(cp.initial_checkpoint_done());
  for (sim::SimTime t = 2 * kMinute; t <= kHour; t += 7 * kSecond + 311) {
    sim.run_until(t);
    EXPECT_LE(cp.flush_time_now_s(), kParams.bound_tau_s + 1e-9)
        << "violated at " << sim::format_time(t);
  }
}

TEST(CheckpointProcess, TriggerTightenedForInFlightDirt) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(2.0, 36.0, 4096.0), kParams);
  // cap = 360; equal dirty and write rates => trigger = cap / 2.
  EXPECT_NEAR(cp.trigger_mb(), 180.0, 1e-9);
}

TEST(CheckpointProcess, CheckpointsKeepCompleting) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  cp.start();
  sim.run_until(kHour);
  // cap 360 MB, trigger ~196 MB, dirty 30 MB/s: a checkpoint roughly every
  // 12 s of accumulation + write time => dozens per hour.
  EXPECT_GT(cp.completed_checkpoints(), 50);
}

TEST(CheckpointProcess, IdleGuestStopsCheckpointing) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(2.0, 0.0), kParams);
  cp.start();
  sim.run_until(kHour);
  EXPECT_EQ(cp.completed_checkpoints(), 1);  // the initial one only
  EXPECT_NEAR(cp.staleness_mb(), 0.0, 1e-9);
}

TEST(CheckpointProcess, DirtyRateIncreaseStillHonoursBound) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(2.0, 10.0), kParams);
  cp.start();
  sim.run_until(3 * kMinute);
  ASSERT_TRUE(cp.initial_checkpoint_done());
  cp.set_dirty_rate(120.0);  // hot burst: dirties 3.3x the write rate
  const sim::SimTime end = sim.now() + 20 * kMinute;
  for (sim::SimTime t = sim.now(); t <= end; t += 5 * kSecond) {
    sim.run_until(t);
    EXPECT_LE(cp.flush_time_now_s(), kParams.bound_tau_s + 1e-6);
  }
}

TEST(CheckpointProcess, ThrottlesWhenGuestOutrunsStorage) {
  // Dirty rate above the write rate: the bound survives only because the
  // guest is stunned — the process must report that it is throttling.
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(2.0, 80.0, 2048.0), kParams);
  cp.start();
  sim.run_until(3 * kMinute);
  ASSERT_TRUE(cp.initial_checkpoint_done());
  bool throttled = false;
  const sim::SimTime end = sim.now() + 10 * kMinute;
  for (sim::SimTime t = sim.now(); t <= end; t += 3 * kSecond) {
    sim.run_until(t);
    EXPECT_LE(cp.flush_time_now_s(), kParams.bound_tau_s + 1e-6);
    throttled = throttled || cp.is_throttling();
  }
  EXPECT_TRUE(throttled);
}

TEST(CheckpointProcess, CalmGuestNeverThrottled) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(2.0, 10.0, 2048.0), kParams);
  cp.start();
  sim.run_until(3 * kMinute);
  ASSERT_TRUE(cp.initial_checkpoint_done());
  // Let the process reach steady state, then sample.
  const sim::SimTime end = sim.now() + 10 * kMinute;
  for (sim::SimTime t = sim.now(); t <= end; t += 7 * kSecond) {
    sim.run_until(t);
    EXPECT_FALSE(cp.is_throttling());
  }
}

TEST(CheckpointProcess, StopCancelsFutureWork) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  cp.start();
  sim.run_until(5 * kMinute);
  const int done = cp.completed_checkpoints();
  cp.stop();
  sim.run_until(kHour);
  EXPECT_EQ(cp.completed_checkpoints(), done);
  EXPECT_FALSE(cp.write_in_progress());
}

TEST(CheckpointProcess, StalenessBeforeInitialIsWholeMemory) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  EXPECT_DOUBLE_EQ(cp.staleness_mb(), 2048.0);
}

TEST(CheckpointProcess, StartTwiceThrows) {
  sim::Simulation sim;
  CheckpointProcess cp(sim, spec(), kParams);
  cp.start();
  EXPECT_THROW(cp.start(), std::logic_error);
}

TEST(CheckpointProcess, RejectsBadParameters) {
  sim::Simulation sim;
  EXPECT_THROW(CheckpointProcess(sim, spec(), CheckpointParams{0.0, 36.0}),
               std::invalid_argument);
  CheckpointProcess cp(sim, spec(), kParams);
  EXPECT_THROW(cp.set_dirty_rate(-1.0), std::invalid_argument);
}

class ProcessTauSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProcessTauSweep, BoundHoldsUnderRandomSampling) {
  const double tau = GetParam();
  sim::Simulation simulation;
  CheckpointProcess cp(simulation, spec(4.0, 45.0, 4096.0),
                       CheckpointParams{tau, 36.0});
  cp.start();
  simulation.run_until(5 * kMinute);
  ASSERT_TRUE(cp.initial_checkpoint_done());
  sim::RngStream rng(GetParam() > 5 ? 1u : 2u);
  for (int i = 0; i < 200; ++i) {
    simulation.run_until(simulation.now() +
                         sim::from_seconds(rng.uniform(0.5, 30.0)));
    ASSERT_LE(cp.flush_time_now_s(), tau + 1e-6) << "tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, ProcessTauSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 30.0));

}  // namespace
}  // namespace spothost::virt
