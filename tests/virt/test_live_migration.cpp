#include "virt/live_migration.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

VmSpec spec_2gb(double dirty_rate = 20.0, double working_set = 512.0) {
  VmSpec s;
  s.memory_gb = 2.0;
  s.dirty_rate_mb_s = dirty_rate;
  s.working_set_mb = working_set;
  return s;
}

TEST(LiveMigration, ConvergesForModerateDirtyRate) {
  const auto r = simulate_live_migration(spec_2gb(), 38.0);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.rounds, 1);
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.downtime_s, 0.0);
  EXPECT_LT(r.downtime_s, 2.0);  // sub-second stop-copy + switchover
}

TEST(LiveMigration, MatchesTable2LanLatency) {
  // Table 2: ~58 s to live-migrate a 2 GB nested VM inside a region. The
  // microbenchmark VM is near-idle (the paper migrated a quiescent guest),
  // so the duration is dominated by the full-RAM round.
  const auto r = simulate_live_migration(spec_2gb(5.0, 256.0), 38.0);
  EXPECT_GT(r.duration_s, 48.0);
  EXPECT_LT(r.duration_s, 70.0);
}

TEST(LiveMigration, WanTakesLonger) {
  const auto lan = simulate_live_migration(spec_2gb(), 38.0);
  const auto wan = simulate_live_migration(spec_2gb(), 15.5);
  EXPECT_GT(wan.duration_s, 1.8 * lan.duration_s);
}

TEST(LiveMigration, DowntimeIsFinalCopyPlusSwitchover) {
  LiveMigrationParams p;
  p.switchover_s = 0.5;
  const auto r = simulate_live_migration(spec_2gb(), 38.0, p);
  EXPECT_GE(r.downtime_s, 0.5);
  EXPECT_LE(r.downtime_s, 0.5 + p.stop_copy_threshold_mb / 38.0 + 1e-9);
}

TEST(LiveMigration, TransfersAtLeastFullMemory) {
  const auto r = simulate_live_migration(spec_2gb(), 38.0);
  EXPECT_GE(r.transferred_mb, 2048.0);
}

TEST(LiveMigration, IdleGuestConvergesInOneRound) {
  const auto r = simulate_live_migration(spec_2gb(0.0), 38.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_NEAR(r.duration_s, 2048.0 / 38.0 + r.downtime_s, 1e-9);
}

TEST(LiveMigration, HotGuestFailsToConvergeAndStopCopies) {
  // Dirtying outpaces the link: pre-copy cannot converge; final stop-copy
  // moves the whole working set and downtime balloons.
  const auto r = simulate_live_migration(spec_2gb(100.0, 2000.0), 38.0);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.downtime_s, 2000.0 / 38.0 * 0.9);
}

TEST(LiveMigration, PessimisticSwitchoverRaisesDowntime) {
  LiveMigrationParams pess;
  pess.switchover_s = 10.0;  // Fig. 7 pessimistic scenario
  const auto typical = simulate_live_migration(spec_2gb(), 38.0);
  const auto pessimistic = simulate_live_migration(spec_2gb(), 38.0, pess);
  EXPECT_NEAR(pessimistic.downtime_s - typical.downtime_s, 9.8, 0.3);
}

TEST(LiveMigration, RejectsBadArguments) {
  EXPECT_THROW(simulate_live_migration(spec_2gb(), 0.0), std::invalid_argument);
  LiveMigrationParams p;
  p.max_rounds = 0;
  EXPECT_THROW(simulate_live_migration(spec_2gb(), 38.0, p), std::invalid_argument);
}

class MemorySizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(MemorySizeSweep, DurationScalesWithMemoryDowntimeDoesNot) {
  VmSpec s = spec_2gb();
  s.memory_gb = GetParam();
  const auto r = simulate_live_migration(s, 38.0);
  EXPECT_TRUE(r.converged);
  // Duration dominated by round 0 = memory / bandwidth.
  EXPECT_GE(r.duration_s, s.memory_mb() / 38.0);
  // Downtime bounded by threshold copy + switchover, independent of size.
  EXPECT_LT(r.downtime_s, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemorySizeSweep,
                         ::testing::Values(1.7, 3.75, 7.5, 15.0));

}  // namespace
}  // namespace spothost::virt
