#include "virt/mechanisms.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

VmSpec small_spec() {
  VmSpec s;
  s.memory_gb = 1.7;
  s.disk_gb = 8.0;
  s.dirty_rate_mb_s = 20.0;
  s.working_set_mb = 435.0;
  return s;
}

MigrationPlanner planner(MechanismCombo combo,
                         MechanismParams params = typical_mechanism_params()) {
  return MigrationPlanner(combo, params, NetworkModel{});
}

TEST(Mechanisms, ComboPredicates) {
  EXPECT_FALSE(uses_live_migration(MechanismCombo::kCkpt));
  EXPECT_FALSE(uses_live_migration(MechanismCombo::kCkptLazy));
  EXPECT_TRUE(uses_live_migration(MechanismCombo::kCkptLive));
  EXPECT_TRUE(uses_live_migration(MechanismCombo::kCkptLazyLive));
  EXPECT_FALSE(uses_lazy_restore(MechanismCombo::kCkpt));
  EXPECT_TRUE(uses_lazy_restore(MechanismCombo::kCkptLazy));
  EXPECT_FALSE(uses_lazy_restore(MechanismCombo::kCkptLive));
  EXPECT_TRUE(uses_lazy_restore(MechanismCombo::kCkptLazyLive));
}

TEST(Mechanisms, Names) {
  EXPECT_EQ(to_string(MechanismCombo::kCkpt), "CKPT");
  EXPECT_EQ(to_string(MechanismCombo::kCkptLazyLive), "CKPT LR + Live");
  EXPECT_EQ(to_string(MigrationClass::kForced), "forced");
  EXPECT_EQ(to_string(MigrationClass::kReverse), "reverse");
}

TEST(Mechanisms, ForcedNeverUsesLiveMigration) {
  // Forced timings with and without live in the combo must agree: the source
  // disappears, so only the checkpoint path exists.
  const auto a = planner(MechanismCombo::kCkpt)
                     .plan(MigrationClass::kForced, small_spec(), "us-east-1a",
                           "us-east-1a");
  const auto b = planner(MechanismCombo::kCkptLive)
                     .plan(MigrationClass::kForced, small_spec(), "us-east-1a",
                           "us-east-1a");
  EXPECT_DOUBLE_EQ(a.flush_s, b.flush_s);
  EXPECT_DOUBLE_EQ(a.restore_s, b.restore_s);
}

TEST(Mechanisms, ForcedFlushWithinGraceBudget) {
  for (const auto combo : kAllCombos) {
    const auto t = planner(combo).plan(MigrationClass::kForced, small_spec(),
                                       "us-east-1a", "us-east-1a");
    EXPECT_LE(t.flush_s, typical_mechanism_params().checkpoint.bound_tau_s + 1e-9);
    EXPECT_GT(t.restore_s, 0.0);
  }
}

TEST(Mechanisms, LazyRestoreCutsForcedDowntime) {
  const auto full = planner(MechanismCombo::kCkpt)
                        .plan(MigrationClass::kForced, small_spec(), "us-east-1a",
                              "us-east-1a");
  const auto lazy = planner(MechanismCombo::kCkptLazy)
                        .plan(MigrationClass::kForced, small_spec(), "us-east-1a",
                              "us-east-1a");
  EXPECT_LT(lazy.restore_s, full.restore_s);
  EXPECT_GT(lazy.degraded_s, 0.0);
  EXPECT_DOUBLE_EQ(full.degraded_s, 0.0);
}

TEST(Mechanisms, LiveCombosHaveTinyVoluntaryDowntime) {
  const auto live = planner(MechanismCombo::kCkptLazyLive)
                        .plan(MigrationClass::kPlanned, small_spec(), "us-east-1a",
                              "us-east-1a");
  const auto suspend = planner(MechanismCombo::kCkptLazy)
                           .plan(MigrationClass::kPlanned, small_spec(),
                                 "us-east-1a", "us-east-1a");
  EXPECT_LT(live.downtime_s, 2.0);
  EXPECT_GT(suspend.downtime_s, 10.0);  // flush + lazy resume
  EXPECT_GT(live.prepare_s, 30.0);      // pre-copy rounds run while up
}

TEST(Mechanisms, CrossFamilyPlannedIncludesDiskCopy) {
  const auto lan = planner(MechanismCombo::kCkptLazyLive)
                       .plan(MigrationClass::kPlanned, small_spec(), "us-east-1a",
                             "us-east-1a");
  const auto wan = planner(MechanismCombo::kCkptLazyLive)
                       .plan(MigrationClass::kPlanned, small_spec(), "us-east-1a",
                             "eu-west-1a");
  // 8 GB disk at ~7.3 MB/s adds ~19 minutes of preparation.
  EXPECT_GT(wan.prepare_s, lan.prepare_s + 1000.0);
  EXPECT_GT(wan.downtime_s, lan.downtime_s);  // WAN switch penalty
}

TEST(Mechanisms, ReverseAndPlannedSymmetricOnLan) {
  const auto p = planner(MechanismCombo::kCkptLazyLive);
  const auto planned =
      p.plan(MigrationClass::kPlanned, small_spec(), "us-east-1a", "us-east-1a");
  const auto reverse =
      p.plan(MigrationClass::kReverse, small_spec(), "us-east-1a", "us-east-1a");
  EXPECT_DOUBLE_EQ(planned.downtime_s, reverse.downtime_s);
  EXPECT_DOUBLE_EQ(planned.prepare_s, reverse.prepare_s);
}

TEST(Mechanisms, PessimisticParamsAreUniformlyWorse) {
  const auto typ = typical_mechanism_params();
  const auto pess = pessimistic_mechanism_params();
  EXPECT_GT(pess.live.switchover_s, typ.live.switchover_s);
  EXPECT_GT(pess.restore.lazy_resume_latency_s, typ.restore.lazy_resume_latency_s);
  EXPECT_LT(pess.restore.read_rate_mb_s, typ.restore.read_rate_mb_s);

  for (const auto combo : kAllCombos) {
    for (const auto cls : {MigrationClass::kForced, MigrationClass::kPlanned}) {
      const auto t = planner(combo, typ).plan(cls, small_spec(), "us-east-1a",
                                              "us-east-1a");
      const auto q = planner(combo, pess).plan(cls, small_spec(), "us-east-1a",
                                               "us-east-1a");
      EXPECT_GE(q.downtime_s, t.downtime_s)
          << to_string(combo) << "/" << to_string(cls);
    }
  }
}

class ComboClassSweep
    : public ::testing::TestWithParam<std::tuple<MechanismCombo, MigrationClass>> {};

TEST_P(ComboClassSweep, TimingsAreNonNegativeAndFinite) {
  const auto& [combo, cls] = GetParam();
  const auto t =
      planner(combo).plan(cls, small_spec(), "us-east-1a", "us-west-1a");
  EXPECT_GE(t.prepare_s, 0.0);
  EXPECT_GE(t.downtime_s, 0.0);
  EXPECT_GE(t.flush_s, 0.0);
  EXPECT_GE(t.restore_s, 0.0);
  EXPECT_GE(t.degraded_s, 0.0);
  EXPECT_LT(t.prepare_s + t.downtime_s, 7200.0);  // sanity: under 2 h
}

INSTANTIATE_TEST_SUITE_P(
    All, ComboClassSweep,
    ::testing::Combine(::testing::ValuesIn(kAllCombos),
                       ::testing::Values(MigrationClass::kForced,
                                         MigrationClass::kPlanned,
                                         MigrationClass::kReverse)));

}  // namespace
}  // namespace spothost::virt
