#include "virt/memory_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spothost::virt {
namespace {

VmSpec spec(double dirty_rate, double working_set) {
  VmSpec s;
  s.dirty_rate_mb_s = dirty_rate;
  s.working_set_mb = working_set;
  return s;
}

TEST(MemoryModel, LinearGrowthBeforeSaturation) {
  const auto s = spec(30.0, 600.0);
  EXPECT_DOUBLE_EQ(dirty_mb_after(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(dirty_mb_after(s, 10.0), 300.0);
}

TEST(MemoryModel, SaturatesAtWorkingSet) {
  const auto s = spec(30.0, 600.0);
  EXPECT_DOUBLE_EQ(dirty_mb_after(s, 100.0), 600.0);
  EXPECT_DOUBLE_EQ(dirty_mb_after(s, 1e6), 600.0);
}

TEST(MemoryModel, NegativeTimeRejected) {
  EXPECT_THROW(dirty_mb_after(spec(30, 600), -1.0), std::invalid_argument);
}

TEST(MemoryModel, TimeToDirtyInvertsGrowth) {
  const auto s = spec(30.0, 600.0);
  EXPECT_DOUBLE_EQ(time_to_dirty_s(s, 300.0), 10.0);
  EXPECT_DOUBLE_EQ(time_to_dirty_s(s, 0.0), 0.0);
}

TEST(MemoryModel, TimeToDirtyBeyondWorkingSetIsInfinite) {
  const auto s = spec(30.0, 600.0);
  EXPECT_TRUE(std::isinf(time_to_dirty_s(s, 601.0)));
}

TEST(MemoryModel, IdleGuestNeverDirties) {
  const auto s = spec(0.0, 600.0);
  EXPECT_DOUBLE_EQ(dirty_mb_after(s, 1000.0), 0.0);
  EXPECT_TRUE(std::isinf(time_to_dirty_s(s, 1.0)));
  EXPECT_DOUBLE_EQ(time_to_dirty_s(s, 0.0), 0.0);
}

class DirtyRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DirtyRoundTrip, InverseConsistency) {
  const auto s = spec(42.0, 800.0);
  const double target = GetParam();
  const double t = time_to_dirty_s(s, target);
  EXPECT_NEAR(dirty_mb_after(s, t), target, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, DirtyRoundTrip,
                         ::testing::Values(0.0, 10.0, 100.0, 400.0, 800.0));

}  // namespace
}  // namespace spothost::virt
