#include "virt/nested.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

TEST(Nested, IoPenaltyMatchesTable4) {
  const NestedVirtParams p;
  // Table 4: disk write 280.4 native -> 274.2 nested (~2 %).
  EXPECT_NEAR(nested_io_throughput(280.4, p), 274.8, 1.0);
}

TEST(Nested, IoThroughputRejectsNegative) {
  EXPECT_THROW(nested_io_throughput(-1.0, NestedVirtParams{}),
               std::invalid_argument);
}

TEST(Nested, CpuFactorIsOneWhenIdle) {
  EXPECT_DOUBLE_EQ(nested_cpu_demand_factor(0.0, NestedVirtParams{}), 1.0);
}

TEST(Nested, CpuFactorReachesWorstCaseAtSaturation) {
  // Sec. 6.2: up to 50 % overhead under load.
  EXPECT_DOUBLE_EQ(nested_cpu_demand_factor(1.0, NestedVirtParams{}), 1.5);
}

TEST(Nested, CpuFactorMonotoneInLoad) {
  const NestedVirtParams p;
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double f = nested_cpu_demand_factor(u, p);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Nested, UtilizationClampedToUnitInterval) {
  const NestedVirtParams p;
  EXPECT_DOUBLE_EQ(nested_cpu_demand_factor(-0.5, p), 1.0);
  EXPECT_DOUBLE_EQ(nested_cpu_demand_factor(2.0, p), 1.5);
}

TEST(Nested, ExponentShapesTheCurve) {
  NestedVirtParams convex;
  convex.cpu_overhead_exponent = 2.0;
  // Convex curve sits below linear at mid load.
  EXPECT_LT(nested_cpu_demand_factor(0.5, convex),
            nested_cpu_demand_factor(0.5, NestedVirtParams{}));
  EXPECT_DOUBLE_EQ(nested_cpu_demand_factor(1.0, convex), 1.5);
}

}  // namespace
}  // namespace spothost::virt
