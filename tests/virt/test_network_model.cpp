#include "virt/network_model.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

TEST(NetworkModel, RegionFamilyStripsZoneSuffix) {
  EXPECT_EQ(NetworkModel::region_family("us-east-1a"), "us-east");
  EXPECT_EQ(NetworkModel::region_family("eu-west-1a"), "eu-west");
  EXPECT_EQ(NetworkModel::region_family("us-west-1a"), "us-west");
}

TEST(NetworkModel, RegionFamilyLeavesBareNamesAlone) {
  EXPECT_EQ(NetworkModel::region_family("localcluster"), "localcluster");
}

TEST(NetworkModel, SameZoneIsLanWithSharedStorage) {
  const NetworkModel nm;
  const auto link = nm.link("us-east-1a", "us-east-1a");
  EXPECT_DOUBLE_EQ(link.mem_bandwidth_mb_s, 38.0);
  EXPECT_DOUBLE_EQ(link.disk_copy_rate_mb_s, 0.0);  // networked storage
  EXPECT_DOUBLE_EQ(link.switch_penalty_s, 0.0);
}

TEST(NetworkModel, CrossZoneSameFamilyNeedsDiskCopy) {
  const NetworkModel nm;
  const auto link = nm.link("us-east-1a", "us-east-1b");
  EXPECT_GT(link.mem_bandwidth_mb_s, 30.0);
  EXPECT_GT(link.disk_copy_rate_mb_s, 0.0);
}

TEST(NetworkModel, CrossFamilyBandwidthsMatchTable2Ordering) {
  const NetworkModel nm;
  const auto east_west = nm.link("us-east-1a", "us-west-1a");
  const auto east_eu = nm.link("us-east-1a", "eu-west-1a");
  const auto west_eu = nm.link("us-west-1a", "eu-west-1a");
  // Table 2: us-east<->us-west and us-east<->eu-west live-migrate a 2 GB VM
  // in ~74 s; us-west<->eu-west takes ~140 s (half the bandwidth).
  EXPECT_NEAR(east_west.mem_bandwidth_mb_s, east_eu.mem_bandwidth_mb_s, 2.0);
  EXPECT_LT(west_eu.mem_bandwidth_mb_s, 0.6 * east_west.mem_bandwidth_mb_s);
  // Disk copy: 2-3 minutes per GB across families.
  for (const auto& link : {east_west, east_eu, west_eu}) {
    const double s_per_gb = 1024.0 / link.disk_copy_rate_mb_s;
    EXPECT_GE(s_per_gb, 100.0);
    EXPECT_LE(s_per_gb, 200.0);
  }
}

TEST(NetworkModel, LinkIsSymmetric) {
  const NetworkModel nm;
  const auto ab = nm.link("us-east-1a", "eu-west-1a");
  const auto ba = nm.link("eu-west-1a", "us-east-1a");
  EXPECT_DOUBLE_EQ(ab.mem_bandwidth_mb_s, ba.mem_bandwidth_mb_s);
  EXPECT_DOUBLE_EQ(ab.disk_copy_rate_mb_s, ba.disk_copy_rate_mb_s);
}

TEST(NetworkModel, UnknownPairGetsConservativeLink) {
  const NetworkModel nm;
  const auto link = nm.link("us-east-1a", "ap-south-1a");
  EXPECT_GT(link.mem_bandwidth_mb_s, 0.0);
  EXPECT_GT(link.disk_copy_rate_mb_s, 0.0);
}

TEST(NetworkModel, CheckpointRateMatchesTable2) {
  // 28s/GB => ~36 MB/s.
  const NetworkModel nm;
  EXPECT_NEAR(1024.0 / nm.checkpoint_write_rate_mb_s(), 28.4, 1.0);
}

TEST(NetworkModel, SettersValidate) {
  NetworkModel nm;
  nm.set_checkpoint_write_rate_mb_s(17.0);
  EXPECT_DOUBLE_EQ(nm.checkpoint_write_rate_mb_s(), 17.0);
  EXPECT_THROW(nm.set_checkpoint_write_rate_mb_s(0.0), std::invalid_argument);
  EXPECT_THROW(nm.set_restore_read_rate_mb_s(-1.0), std::invalid_argument);
  EXPECT_THROW(nm.set_lan_bandwidth_mb_s(0.0), std::invalid_argument);
}

TEST(NetworkModel, LanOverrideFlowsIntoLinks) {
  NetworkModel nm;
  nm.set_lan_bandwidth_mb_s(100.0);
  EXPECT_DOUBLE_EQ(nm.link("r-1a", "r-1a").mem_bandwidth_mb_s, 100.0);
}

}  // namespace
}  // namespace spothost::virt
