#include "virt/restore.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

VmSpec spec(double memory_gb) {
  VmSpec s;
  s.memory_gb = memory_gb;
  return s;
}

TEST(Restore, FullRestoreScalesWithMemory) {
  const RestoreParams p;
  // Table 2: restore reads at ~28 s/GB.
  EXPECT_NEAR(simulate_full_restore(spec(1.0), p).downtime_s, 28.4, 0.5);
  EXPECT_NEAR(simulate_full_restore(spec(2.0), p).downtime_s, 56.9, 1.0);
  EXPECT_NEAR(simulate_full_restore(spec(15.0), p).downtime_s, 426.7, 5.0);
}

TEST(Restore, FullRestoreHasNoDegradedWindow) {
  EXPECT_DOUBLE_EQ(simulate_full_restore(spec(2.0), RestoreParams{}).degraded_s, 0.0);
}

TEST(Restore, LazyRestoreDowntimeIndependentOfMemory) {
  const RestoreParams p;
  EXPECT_DOUBLE_EQ(simulate_lazy_restore(spec(1.0), p).downtime_s, 20.0);
  EXPECT_DOUBLE_EQ(simulate_lazy_restore(spec(15.0), p).downtime_s, 20.0);
}

TEST(Restore, LazyRestoreDegradedWindowScalesWithMemory) {
  const RestoreParams p;
  const auto small = simulate_lazy_restore(spec(1.0), p);
  const auto big = simulate_lazy_restore(spec(15.0), p);
  EXPECT_GT(big.degraded_s, small.degraded_s);
  // Total lazy work (prefix + background) == full image read time.
  EXPECT_NEAR(big.downtime_s + big.degraded_s,
              simulate_full_restore(spec(15.0), p).downtime_s, 1e-9);
}

TEST(Restore, TinyVmFullyRestoredWithinResumeLatency) {
  RestoreParams p;
  p.lazy_resume_latency_s = 20.0;
  // 0.5 GB at 36 MB/s reads completely in ~14 s < 20 s resume latency.
  const auto r = simulate_lazy_restore(spec(0.5), p);
  EXPECT_DOUBLE_EQ(r.degraded_s, 0.0);
}

TEST(Restore, LazyBeatsFullForRealSizes) {
  const RestoreParams p;
  for (const double gb : {1.7, 3.75, 7.5, 15.0}) {
    EXPECT_LT(simulate_lazy_restore(spec(gb), p).downtime_s,
              simulate_full_restore(spec(gb), p).downtime_s);
  }
}

TEST(Restore, PessimisticLazyLatency) {
  RestoreParams p;
  p.lazy_resume_latency_s = 120.0;  // Fig. 7 pessimistic
  EXPECT_DOUBLE_EQ(simulate_lazy_restore(spec(2.0), p).downtime_s, 120.0);
}

TEST(Restore, RejectsBadParams) {
  RestoreParams p;
  p.read_rate_mb_s = 0.0;
  EXPECT_THROW(simulate_full_restore(spec(2.0), p), std::invalid_argument);
  EXPECT_THROW(simulate_lazy_restore(spec(2.0), p), std::invalid_argument);
  RestoreParams q;
  q.lazy_resume_latency_s = -1.0;
  EXPECT_THROW(simulate_lazy_restore(spec(2.0), q), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::virt
