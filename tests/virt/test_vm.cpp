#include "virt/vm.hpp"

#include <gtest/gtest.h>

namespace spothost::virt {
namespace {

TEST(VmSpec, DefaultSpecDerivation) {
  const VmSpec s = default_spec_for_memory(4.0, 16.0);
  EXPECT_DOUBLE_EQ(s.memory_gb, 4.0);
  EXPECT_DOUBLE_EQ(s.disk_gb, 16.0);
  EXPECT_DOUBLE_EQ(s.working_set_mb, 1024.0);  // capped at 1 GB
  EXPECT_DOUBLE_EQ(default_spec_for_memory(1.0, 8.0).working_set_mb, 256.0);
}

TEST(VmSpec, ConvenienceConversions) {
  VmSpec s;
  s.memory_gb = 2.0;
  s.disk_gb = 3.0;
  EXPECT_DOUBLE_EQ(s.memory_mb(), 2048.0);
  EXPECT_DOUBLE_EQ(s.disk_mb(), 3072.0);
}

TEST(Vm, StartsRunning) {
  const Vm vm{VmSpec{}};
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, LegalLifecyclePath) {
  Vm vm{VmSpec{}};
  vm.transition(VmState::kSuspended, 10);
  vm.transition(VmState::kDegraded, 20);   // lazy resume
  vm.transition(VmState::kRunning, 30);    // restore stream finished
  vm.transition(VmState::kDown, 40);       // revoked
  vm.transition(VmState::kRunning, 50);    // restored elsewhere
  EXPECT_EQ(vm.state(), VmState::kRunning);
  EXPECT_EQ(vm.last_transition(), 50);
}

TEST(Vm, SuspendedCanResumeDirectly) {
  Vm vm{VmSpec{}};
  vm.transition(VmState::kSuspended, 1);
  vm.transition(VmState::kRunning, 2);
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, DownCannotSuspend) {
  Vm vm{VmSpec{}};
  vm.transition(VmState::kDown, 1);
  EXPECT_THROW(vm.transition(VmState::kSuspended, 2), std::logic_error);
}

TEST(Vm, RunningCannotJumpToDegraded) {
  Vm vm{VmSpec{}};
  EXPECT_THROW(vm.transition(VmState::kDegraded, 1), std::logic_error);
}

TEST(Vm, TimeRegressionRejected) {
  Vm vm{VmSpec{}};
  vm.transition(VmState::kSuspended, 100);
  EXPECT_THROW(vm.transition(VmState::kRunning, 50), std::logic_error);
}

TEST(Vm, StateNames) {
  EXPECT_EQ(to_string(VmState::kRunning), "running");
  EXPECT_EQ(to_string(VmState::kSuspended), "suspended");
  EXPECT_EQ(to_string(VmState::kDown), "down");
  EXPECT_EQ(to_string(VmState::kDegraded), "degraded");
}

}  // namespace
}  // namespace spothost::virt
