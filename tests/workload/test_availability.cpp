#include "workload/availability.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;

TEST(Availability, PerfectUptimeIsZeroUnavailability) {
  AvailabilityTracker t;
  t.start(0);
  t.finalize(30 * kDay);
  EXPECT_DOUBLE_EQ(t.unavailability(), 0.0);
  EXPECT_EQ(t.outage_count(), 0u);
}

TEST(Availability, SingleOutageFractions) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(kHour);
  t.mark_up(kHour + 36 * kSecond);
  t.finalize(100 * kHour);
  // 36 s of 100 h = 0.01 %: exactly the four-nines budget.
  EXPECT_NEAR(t.unavailability_percent(), 0.01, 1e-9);
  EXPECT_EQ(t.outage_count(), 1u);
  EXPECT_EQ(t.total_downtime(), 36 * kSecond);
}

TEST(Availability, MultipleOutagesAccumulate) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(kHour);
  t.mark_up(kHour + 30 * kSecond);
  t.mark_down(5 * kHour);
  t.mark_up(5 * kHour + 90 * kSecond);
  t.finalize(10 * kHour);
  EXPECT_EQ(t.total_downtime(), 120 * kSecond);
  EXPECT_EQ(t.outage_count(), 2u);
  EXPECT_EQ(t.longest_outage(), 90 * kSecond);
}

TEST(Availability, OpenOutageClosedAtFinalize) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(9 * kHour);
  t.finalize(10 * kHour);
  EXPECT_EQ(t.total_downtime(), kHour);
  EXPECT_FALSE(t.is_down());  // finalized
}

TEST(Availability, DegradedTimeTrackedSeparately) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(kHour);
  t.mark_up(kHour + 20 * kSecond);
  t.mark_degraded(kHour + 20 * kSecond);
  t.mark_normal(kHour + 80 * kSecond);
  t.finalize(10 * kHour);
  EXPECT_EQ(t.total_downtime(), 20 * kSecond);
  EXPECT_EQ(t.total_degraded(), 60 * kSecond);
  // Degraded time is NOT downtime.
  EXPECT_NEAR(t.unavailability(), 20.0 / (10.0 * 3600.0), 1e-12);
}

TEST(Availability, NestedDegradedCallsCollapse) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_degraded(10 * kSecond);
  t.mark_degraded(20 * kSecond);  // no-op
  t.mark_normal(30 * kSecond);
  t.mark_normal(40 * kSecond);  // no-op
  t.finalize(kMinute);
  EXPECT_EQ(t.total_degraded(), 20 * kSecond);
}

TEST(Availability, OpenDegradedClosedAtFinalize) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_degraded(50 * kSecond);
  t.finalize(kMinute);
  EXPECT_EQ(t.total_degraded(), 10 * kSecond);
}

TEST(Availability, DoubleDownThrows) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(1);
  EXPECT_THROW(t.mark_down(2), std::logic_error);
}

TEST(Availability, UpWithoutDownThrows) {
  AvailabilityTracker t;
  t.start(0);
  EXPECT_THROW(t.mark_up(1), std::logic_error);
}

TEST(Availability, UseBeforeStartThrows) {
  AvailabilityTracker t;
  EXPECT_THROW(t.mark_down(1), std::logic_error);
  EXPECT_THROW(t.finalize(10), std::logic_error);
}

TEST(Availability, UnavailabilityBeforeFinalizeThrows) {
  AvailabilityTracker t;
  t.start(0);
  EXPECT_THROW((void)t.unavailability(), std::logic_error);
}

TEST(Availability, StartTwiceThrows) {
  AvailabilityTracker t;
  t.start(0);
  EXPECT_THROW(t.start(0), std::logic_error);
}

TEST(Availability, TimeRegressionInOutageThrows) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(100);
  EXPECT_THROW(t.mark_up(50), std::logic_error);
}

TEST(Availability, NonZeroTrackingStart) {
  AvailabilityTracker t;
  t.start(kDay);  // went live a day in
  t.mark_down(kDay + kHour);
  t.mark_up(kDay + kHour + 36 * kSecond);
  t.finalize(kDay + 100 * kHour);
  EXPECT_NEAR(t.unavailability_percent(), 0.01, 1e-9);
}

}  // namespace
}  // namespace spothost::workload
