#include "workload/diurnal.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kMinute;

const DiurnalPattern kPattern{0.25, 1.0, 20.0};

TEST(Diurnal, PeakAndTroughValues) {
  // Peak at 20:00, trough 12 h opposite (08:00).
  EXPECT_NEAR(kPattern.load_at(20 * kHour), 1.0, 1e-12);
  EXPECT_NEAR(kPattern.load_at(8 * kHour), 0.25, 1e-12);
}

TEST(Diurnal, PeriodIs24Hours) {
  for (int h = 0; h < 24; h += 3) {
    EXPECT_NEAR(kPattern.load_at(h * kHour),
                kPattern.load_at(h * kHour + 5 * kDay), 1e-9);
  }
}

TEST(Diurnal, LoadBoundedByConfig) {
  for (sim::SimTime t = 0; t < kDay; t += 13 * kMinute) {
    const double l = kPattern.load_at(t);
    EXPECT_GE(l, 0.25 - 1e-12);
    EXPECT_LE(l, 1.0 + 1e-12);
  }
}

TEST(Diurnal, IntegralOverFullDayIsMeanTimesDay) {
  // Over a full period the cosine integrates away: mean = (off+peak)/2.
  const double expected = (0.25 + 1.0) / 2.0 * 86400.0;
  EXPECT_NEAR(kPattern.load_integral(0, kDay), expected, 1.0);
}

TEST(Diurnal, IntegralMatchesNumericQuadrature) {
  const sim::SimTime from = 5 * kHour + 17 * kMinute;
  const sim::SimTime to = 22 * kHour + 3 * kMinute;
  double numeric = 0.0;
  const sim::SimTime step = sim::kSecond;
  for (sim::SimTime t = from; t < to; t += step) {
    numeric += kPattern.load_at(t) * sim::to_seconds(step);
  }
  EXPECT_NEAR(kPattern.load_integral(from, to), numeric, numeric * 1e-4);
}

TEST(Diurnal, UsersAndDirtyRateScaleWithLoad) {
  EXPECT_EQ(kPattern.users_at(20 * kHour, 400), 400);
  EXPECT_EQ(kPattern.users_at(8 * kHour, 400), 100);
  EXPECT_NEAR(kPattern.dirty_rate_at(8 * kHour, 40.0), 10.0, 1e-9);
}

TEST(Diurnal, RejectsBadPattern) {
  const DiurnalPattern bad{0.8, 0.2, 12.0};
  EXPECT_THROW(bad.load_at(0), std::invalid_argument);
  EXPECT_THROW(kPattern.load_integral(kHour, 0), std::invalid_argument);
}

TEST(Diurnal, PeakOutageWeighsMoreThanTroughOutage) {
  AvailabilityTracker peak_tracker;
  peak_tracker.start(0);
  peak_tracker.mark_down(20 * kHour);
  peak_tracker.mark_up(20 * kHour + 10 * kMinute);
  peak_tracker.finalize(kDay);

  AvailabilityTracker trough_tracker;
  trough_tracker.start(0);
  trough_tracker.mark_down(8 * kHour);
  trough_tracker.mark_up(8 * kHour + 10 * kMinute);
  trough_tracker.finalize(kDay);

  const double peak_u = load_weighted_unavailability(peak_tracker, kPattern, kDay);
  const double trough_u =
      load_weighted_unavailability(trough_tracker, kPattern, kDay);
  // Same raw downtime, but the peak outage hits 4x the traffic.
  EXPECT_NEAR(peak_u / trough_u, 4.0, 0.1);
  EXPECT_DOUBLE_EQ(peak_tracker.unavailability(), trough_tracker.unavailability());
}

TEST(Diurnal, WeightedEqualsUnweightedForFlatLoad) {
  const DiurnalPattern flat{0.7, 0.7, 12.0};
  AvailabilityTracker tracker;
  tracker.start(0);
  tracker.mark_down(3 * kHour);
  tracker.mark_up(4 * kHour);
  tracker.finalize(kDay);
  EXPECT_NEAR(load_weighted_unavailability(tracker, flat, kDay),
              tracker.unavailability(), 1e-9);
}

TEST(Diurnal, NoOutagesZeroWeighted) {
  AvailabilityTracker tracker;
  tracker.start(0);
  tracker.finalize(kDay);
  EXPECT_DOUBLE_EQ(load_weighted_unavailability(tracker, kPattern, kDay), 0.0);
}

}  // namespace
}  // namespace spothost::workload
