#include "workload/experience.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kMinute;

ExperienceConfig fast_config() {
  ExperienceConfig cfg;
  cfg.sample_step = 5 * kMinute;
  cfg.peak_browsers = 100;  // below the knee: sane response times
  return cfg;
}

AvailabilityTracker perfect_month() {
  AvailabilityTracker t;
  t.start(0);
  t.finalize(30 * kDay);
  return t;
}

TEST(Experience, PerfectUptimeNeverFails) {
  const auto report =
      evaluate_experience(perfect_month(), 30 * kDay, fast_config());
  EXPECT_DOUBLE_EQ(report.failed_fraction, 0.0);
  EXPECT_DOUBLE_EQ(report.degraded_fraction, 0.0);
  EXPECT_GT(report.mean_response_ms, 0.0);
  EXPECT_GT(report.apdex, 0.9);  // light load, I/O-bound: snappy site
}

TEST(Experience, OutagesFailTheirTraffic) {
  AvailabilityTracker t;
  t.start(0);
  // A day-long outage (extreme, to dominate sampling noise).
  t.mark_down(5 * kDay);
  t.mark_up(6 * kDay);
  t.finalize(30 * kDay);
  const auto report = evaluate_experience(t, 30 * kDay, fast_config());
  // Roughly 1/30 of traffic fails (modulo the diurnal weighting).
  EXPECT_GT(report.failed_fraction, 0.02);
  EXPECT_LT(report.failed_fraction, 0.05);
}

TEST(Experience, PeakOutageFailsMoreTrafficThanTroughOutage) {
  auto outage_at = [&](int hour_of_day) {
    AvailabilityTracker t;
    t.start(0);
    t.mark_down(hour_of_day * kHour);
    t.mark_up(hour_of_day * kHour + 2 * kHour);
    t.finalize(2 * kDay);
    return evaluate_experience(t, 2 * kDay, fast_config()).failed_fraction;
  };
  EXPECT_GT(outage_at(19), 2.0 * outage_at(7));  // peak at 20:00, trough 08:00
}

TEST(Experience, DegradedWindowsSlowTheSite) {
  AvailabilityTracker with_degraded;
  with_degraded.start(0);
  with_degraded.mark_down(10 * kHour);
  with_degraded.mark_up(10 * kHour + kMinute);
  with_degraded.mark_degraded(10 * kHour + kMinute);
  with_degraded.mark_normal(16 * kHour);  // long degraded tail
  with_degraded.finalize(kDay);

  AvailabilityTracker clean;
  clean.start(0);
  clean.mark_down(10 * kHour);
  clean.mark_up(10 * kHour + kMinute);
  clean.finalize(kDay);

  ExperienceConfig cfg = fast_config();
  cfg.scenario = TpcwScenario::kNoImages;  // CPU-bound: slowdown visible
  cfg.peak_browsers = 200;
  const auto slow = evaluate_experience(with_degraded, kDay, cfg);
  const auto fast = evaluate_experience(clean, kDay, cfg);
  EXPECT_GT(slow.degraded_fraction, 0.0);
  EXPECT_GT(slow.mean_response_ms, fast.mean_response_ms);
}

TEST(Experience, ApdexDropsWithOutages) {
  AvailabilityTracker t;
  t.start(0);
  t.mark_down(10 * kHour);
  t.mark_up(20 * kHour);
  t.finalize(kDay);
  const auto bad = evaluate_experience(t, kDay, fast_config());
  const auto good = evaluate_experience(perfect_month(), 30 * kDay, fast_config());
  EXPECT_LT(bad.apdex, good.apdex - 0.2);
}

TEST(Experience, RejectsBadArguments) {
  EXPECT_THROW(evaluate_experience(perfect_month(), 0, fast_config()),
               std::invalid_argument);
  ExperienceConfig cfg = fast_config();
  cfg.sample_step = 0;
  EXPECT_THROW(evaluate_experience(perfect_month(), kDay, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace spothost::workload
