#include "workload/group.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

using sim::kHour;
using sim::kSecond;

ServiceGroup make_group(int n = 4) {
  return ServiceGroup("tenant", n, virt::default_spec_for_memory(1.7, 8.0));
}

TEST(ServiceGroup, MembersAreNamedAndSized) {
  const auto g = make_group(3);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.member(0).name(), "tenant-0");
  EXPECT_EQ(g.member(2).name(), "tenant-2");
  EXPECT_THROW(g.member(3), std::out_of_range);
}

TEST(ServiceGroup, RejectsEmptyGroup) {
  EXPECT_THROW(ServiceGroup("x", 0, virt::VmSpec{}), std::invalid_argument);
}

TEST(ServiceGroup, AggregateSpecSumsResources) {
  const auto g = make_group(4);
  const auto agg = g.aggregate_spec();
  EXPECT_DOUBLE_EQ(agg.memory_gb, 4 * 1.7);
  EXPECT_DOUBLE_EQ(agg.disk_gb, 4 * 8.0);
  EXPECT_DOUBLE_EQ(agg.working_set_mb,
                   4 * g.member(0).spec().working_set_mb);
  EXPECT_DOUBLE_EQ(agg.dirty_rate_mb_s, 4 * g.member(0).spec().dirty_rate_mb_s);
}

TEST(ServiceGroup, OutagesHitEveryMemberInLockstep) {
  auto g = make_group(3);
  g.go_live(0);
  EXPECT_TRUE(g.is_up());
  g.begin_outage(kHour, OutageCause::kForcedMigration);
  EXPECT_FALSE(g.is_up());
  g.end_outage(kHour + 30 * kSecond, /*degraded=*/false);
  EXPECT_TRUE(g.is_up());
  g.finalize(10 * kHour);
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.member(i).availability().total_downtime(), 30 * kSecond) << i;
    EXPECT_EQ(g.member(i).outage_count(OutageCause::kForcedMigration), 1) << i;
  }
}

TEST(ServiceGroup, DegradedWindowsPropagate) {
  auto g = make_group(2);
  g.go_live(0);
  g.begin_outage(kHour, OutageCause::kPlannedMigration);
  g.end_outage(kHour + 20 * kSecond, /*degraded=*/true);
  g.end_degraded(kHour + 60 * kSecond);
  g.finalize(2 * kHour);
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.member(i).availability().total_degraded(), 40 * kSecond);
  }
}

TEST(ServiceGroup, MeanUnavailabilityMatchesMembers) {
  auto g = make_group(2);
  g.go_live(0);
  g.begin_outage(kHour, OutageCause::kOther);
  g.end_outage(kHour + 36 * kSecond, false);
  g.finalize(100 * kHour);
  EXPECT_NEAR(g.mean_unavailability_percent(), 0.01, 1e-9);
}

TEST(ServiceGroup, UsableThroughEndpointInterface) {
  auto g = make_group(2);
  ServiceEndpoint& endpoint = g;
  endpoint.go_live(0);
  endpoint.begin_outage(kHour, OutageCause::kSpotLoss);
  EXPECT_FALSE(endpoint.is_up());
  endpoint.end_outage(2 * kHour, false);
  endpoint.finalize(3 * kHour);
  EXPECT_EQ(g.member(1).availability().total_downtime(), kHour);
}

}  // namespace
}  // namespace spothost::workload
