#include "workload/iobench.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

IoBench make_bench(double jitter = 0.0) {
  return IoBench(IoBenchBaselines{}, virt::NestedVirtParams{}, jitter);
}

TEST(IoBench, NativeMatchesBaselines) {
  auto b = make_bench();
  sim::RngStream rng(1);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kNetworkTx, HostKind::kNativeVm, rng), 304.0);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kNetworkRx, HostKind::kNativeVm, rng), 316.0);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kDiskRead, HostKind::kNativeVm, rng), 304.6);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kDiskWrite, HostKind::kNativeVm, rng), 280.4);
}

TEST(IoBench, NestedNetworkIsLineRate) {
  // Table 4: nested TX/RX matches native through the NAT path.
  auto b = make_bench();
  sim::RngStream rng(1);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kNetworkTx, HostKind::kNestedVm, rng), 304.0);
  EXPECT_DOUBLE_EQ(b.run(IoBenchKind::kNetworkRx, HostKind::kNestedVm, rng), 316.0);
}

TEST(IoBench, NestedDiskPaysTwoPercent) {
  auto b = make_bench();
  sim::RngStream rng(1);
  EXPECT_NEAR(b.run(IoBenchKind::kDiskRead, HostKind::kNestedVm, rng),
              304.6 * 0.98, 1e-9);
  EXPECT_NEAR(b.run(IoBenchKind::kDiskWrite, HostKind::kNestedVm, rng),
              280.4 * 0.98, 1e-9);
}

TEST(IoBench, JitterAveragesOut) {
  auto b = IoBench(IoBenchBaselines{}, virt::NestedVirtParams{}, 0.02);
  sim::RngStream rng(7);
  const double mean =
      b.mean_of_runs(IoBenchKind::kDiskWrite, HostKind::kNativeVm, 2000, rng);
  EXPECT_NEAR(mean, 280.4, 1.0);
}

TEST(IoBench, MeanOfRunsRejectsZeroRuns) {
  auto b = make_bench();
  sim::RngStream rng(1);
  EXPECT_THROW(b.mean_of_runs(IoBenchKind::kDiskRead, HostKind::kNativeVm, 0, rng),
               std::invalid_argument);
}

TEST(IoBench, NegativeJitterRejected) {
  EXPECT_THROW(IoBench(IoBenchBaselines{}, virt::NestedVirtParams{}, -0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace spothost::workload
