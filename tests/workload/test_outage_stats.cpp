#include "workload/outage_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spothost::workload {
namespace {

using sim::kDay;
using sim::kHour;
using sim::kSecond;

AvailabilityTracker tracker_with(std::initializer_list<int> durations_s) {
  AvailabilityTracker t;
  t.start(0);
  sim::SimTime at = kHour;
  for (const int d : durations_s) {
    t.mark_down(at);
    t.mark_up(at + d * kSecond);
    at += kHour;
  }
  t.finalize(30 * kDay);
  return t;
}

TEST(OutageStats, NoOutages) {
  const auto t = tracker_with({});
  const auto s = compute_outage_stats(t, 30 * kDay);
  EXPECT_EQ(s.count, 0);
  EXPECT_TRUE(std::isinf(s.mtbf_hours));
  EXPECT_DOUBLE_EQ(s.max_s, 0.0);
}

TEST(OutageStats, SingleOutage) {
  const auto t = tracker_with({120});
  const auto s = compute_outage_stats(t, 30 * kDay);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean_s, 120.0);
  EXPECT_DOUBLE_EQ(s.p50_s, 120.0);
  EXPECT_DOUBLE_EQ(s.p95_s, 120.0);
  EXPECT_DOUBLE_EQ(s.max_s, 120.0);
  EXPECT_NEAR(s.mtbf_hours, (30 * 24 * 3600.0 - 120.0) / 3600.0, 1e-9);
}

TEST(OutageStats, PercentilesNearestRank) {
  const auto t = tracker_with({10, 20, 30, 40, 100});
  const auto s = compute_outage_stats(t, 30 * kDay);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.mean_s, 40.0);
  EXPECT_DOUBLE_EQ(s.p50_s, 30.0);   // rank ceil(2.5)=3 -> 30
  EXPECT_DOUBLE_EQ(s.p95_s, 100.0);  // rank ceil(4.75)=5 -> 100
  EXPECT_DOUBLE_EQ(s.max_s, 100.0);
  EXPECT_DOUBLE_EQ(s.mttr_s, s.mean_s);
}

TEST(OutageStats, MtbfDividesUptimeByFailures) {
  const auto t = tracker_with({60, 60});
  const auto s = compute_outage_stats(t, 2 * kDay);
  EXPECT_NEAR(s.mtbf_hours, (2 * 24 * 3600.0 - 120.0) / 3600.0 / 2.0, 1e-9);
}

}  // namespace
}  // namespace spothost::workload
