#include "workload/queueing.hpp"

#include <gtest/gtest.h>

#include <array>

namespace spothost::workload {
namespace {

TEST(Mva, ZeroCustomersIsIdle) {
  const std::array<Station, 1> st{Station{"cpu", 0.1, false}};
  const auto r = solve_closed_mva(st, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.throughput_per_s, 0.0);
  EXPECT_DOUBLE_EQ(r.response_time_s, 0.0);
}

TEST(Mva, SingleCustomerSeesRawDemand) {
  // With one customer there is never queueing: R = sum of demands.
  const std::array<Station, 2> st{Station{"cpu", 0.10, false},
                                  Station{"io", 0.05, false}};
  const auto r = solve_closed_mva(st, 1, 2.0);
  EXPECT_NEAR(r.response_time_s, 0.15, 1e-12);
  EXPECT_NEAR(r.throughput_per_s, 1.0 / 2.15, 1e-12);
}

TEST(Mva, ThroughputBoundedByBottleneck) {
  const std::array<Station, 2> st{Station{"cpu", 0.10, false},
                                  Station{"io", 0.02, false}};
  const auto r = solve_closed_mva(st, 500, 1.0);
  EXPECT_LE(r.throughput_per_s, 1.0 / 0.10 + 1e-9);
  EXPECT_GT(r.throughput_per_s, 0.95 / 0.10);  // saturated
}

TEST(Mva, HighLoadResponseMatchesAsymptote) {
  // R(n) -> n * D_max - Z as n -> infinity.
  const std::array<Station, 1> st{Station{"cpu", 0.05, false}};
  const int n = 400;
  const double z = 7.0;
  const auto r = solve_closed_mva(st, n, z);
  EXPECT_NEAR(r.response_time_s, n * 0.05 - z, 0.05);
}

TEST(Mva, LittlesLawHolds) {
  const std::array<Station, 2> st{Station{"cpu", 0.03, false},
                                  Station{"io", 0.06, false}};
  const int n = 50;
  const double z = 1.0;
  const auto r = solve_closed_mva(st, n, z);
  // N = X * (R + Z)
  EXPECT_NEAR(n, r.throughput_per_s * (r.response_time_s + z), 1e-9);
  // Queue lengths sum to customers at stations.
  double q = 0.0;
  for (const double x : r.queue_lengths) q += x;
  EXPECT_NEAR(q + r.throughput_per_s * z, n, 1e-9);
}

TEST(Mva, UtilizationIsThroughputTimesDemand) {
  const std::array<Station, 1> st{Station{"cpu", 0.04, false}};
  const auto r = solve_closed_mva(st, 20, 1.0);
  EXPECT_NEAR(r.utilizations[0], r.throughput_per_s * 0.04, 1e-12);
  EXPECT_LE(r.utilizations[0], 1.0 + 1e-9);
}

TEST(Mva, DelayCenterNeverQueues) {
  const std::array<Station, 2> st{Station{"cpu", 0.05, false},
                                  Station{"net", 0.2, true}};
  const auto r = solve_closed_mva(st, 200, 0.5);
  // Residence at the delay center equals its demand regardless of load,
  // so R >= 0.2 but the delay contribution is exactly 0.2.
  const auto r1 = solve_closed_mva(st, 1, 0.5);
  EXPECT_NEAR(r1.response_time_s, 0.25, 1e-12);
  EXPECT_GT(r.response_time_s, 5.0);  // CPU queues, delay does not
}

TEST(Mva, MonotoneInCustomers) {
  const std::array<Station, 2> st{Station{"cpu", 0.03, false},
                                  Station{"io", 0.05, false}};
  double prev_r = 0.0, prev_x = 0.0;
  for (int n = 1; n <= 300; n += 20) {
    const auto r = solve_closed_mva(st, n, 2.0);
    EXPECT_GE(r.response_time_s, prev_r - 1e-9);
    EXPECT_GE(r.throughput_per_s, prev_x - 1e-9);
    prev_r = r.response_time_s;
    prev_x = r.throughput_per_s;
  }
}

TEST(Mva, RejectsBadInput) {
  const std::array<Station, 1> st{Station{"cpu", 0.1, false}};
  EXPECT_THROW(solve_closed_mva(st, -1, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_closed_mva(st, 1, -1.0), std::invalid_argument);
  const std::array<Station, 1> bad{Station{"cpu", -0.1, false}};
  EXPECT_THROW(solve_closed_mva(bad, 1, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::workload
