#include "workload/service.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

using sim::kHour;
using sim::kSecond;

AlwaysOnService make_service() {
  return AlwaysOnService("shop", virt::default_spec_for_memory(1.7, 8.0));
}

TEST(Service, GoLiveStartsUp) {
  auto s = make_service();
  s.go_live(0);
  EXPECT_TRUE(s.is_up());
  EXPECT_EQ(s.name(), "shop");
  EXPECT_DOUBLE_EQ(s.spec().memory_gb, 1.7);
}

TEST(Service, OutageRoundTripUpdatesAvailability) {
  auto s = make_service();
  s.go_live(0);
  s.begin_outage(kHour, OutageCause::kForcedMigration);
  EXPECT_FALSE(s.is_up());
  EXPECT_EQ(s.vm().state(), virt::VmState::kDown);
  s.end_outage(kHour + 30 * kSecond, /*degraded=*/false);
  EXPECT_TRUE(s.is_up());
  EXPECT_EQ(s.vm().state(), virt::VmState::kRunning);
  s.finalize(10 * kHour);
  EXPECT_EQ(s.availability().total_downtime(), 30 * kSecond);
}

TEST(Service, DegradedResumeTransitionsThroughDegraded) {
  auto s = make_service();
  s.go_live(0);
  s.begin_outage(kHour, OutageCause::kForcedMigration);
  s.end_outage(kHour + 20 * kSecond, /*degraded=*/true);
  EXPECT_TRUE(s.is_up());
  EXPECT_EQ(s.vm().state(), virt::VmState::kDegraded);
  s.end_degraded(kHour + 60 * kSecond);
  EXPECT_EQ(s.vm().state(), virt::VmState::kRunning);
  s.finalize(10 * kHour);
  EXPECT_EQ(s.availability().total_degraded(), 40 * kSecond);
}

TEST(Service, EndDegradedIsIdempotent) {
  auto s = make_service();
  s.go_live(0);
  s.end_degraded(kHour);  // not degraded: no-op
  EXPECT_EQ(s.vm().state(), virt::VmState::kRunning);
}

TEST(Service, OutageCausesCountedSeparately) {
  auto s = make_service();
  s.go_live(0);
  s.begin_outage(1 * kHour, OutageCause::kForcedMigration);
  s.end_outage(1 * kHour + kSecond, false);
  s.begin_outage(2 * kHour, OutageCause::kPlannedMigration);
  s.end_outage(2 * kHour + kSecond, false);
  s.begin_outage(3 * kHour, OutageCause::kForcedMigration);
  s.end_outage(3 * kHour + kSecond, false);
  EXPECT_EQ(s.outage_count(OutageCause::kForcedMigration), 2);
  EXPECT_EQ(s.outage_count(OutageCause::kPlannedMigration), 1);
  EXPECT_EQ(s.outage_count(OutageCause::kReverseMigration), 0);
  EXPECT_EQ(s.outage_count(OutageCause::kSpotLoss), 0);
}

TEST(Service, OutageFromDegradedState) {
  // A forced migration can hit during a lazy-restore window.
  auto s = make_service();
  s.go_live(0);
  s.begin_outage(kHour, OutageCause::kForcedMigration);
  s.end_outage(kHour + 20 * kSecond, true);
  s.begin_outage(kHour + 40 * kSecond, OutageCause::kForcedMigration);
  EXPECT_FALSE(s.is_up());
  s.end_outage(kHour + 80 * kSecond, false);
  s.finalize(2 * kHour);
  // Degraded window was cut short at the second outage.
  EXPECT_EQ(s.availability().total_degraded(), 20 * kSecond);
}

TEST(Service, DoubleOutageThrows) {
  auto s = make_service();
  s.go_live(0);
  s.begin_outage(1, OutageCause::kOther);
  EXPECT_THROW(s.begin_outage(2, OutageCause::kOther), std::logic_error);
}

}  // namespace
}  // namespace spothost::workload
