#include "workload/tpcw.hpp"

#include <gtest/gtest.h>

namespace spothost::workload {
namespace {

TEST(Tpcw, ResponseRisesWithLoad) {
  const TpcwModel model;
  double prev = 0.0;
  for (int eb = 100; eb <= 400; eb += 50) {
    const double r =
        model.response_time_ms(eb, TpcwScenario::kWithImages, HostKind::kNativeVm);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(Tpcw, WithImagesNestedMatchesNative) {
  // Fig. 12(a): I/O-bound workload — nested within a few percent of native.
  const TpcwModel model;
  for (int eb = 100; eb <= 400; eb += 100) {
    const double native =
        model.response_time_ms(eb, TpcwScenario::kWithImages, HostKind::kNativeVm);
    const double nested =
        model.response_time_ms(eb, TpcwScenario::kWithImages, HostKind::kNestedVm);
    EXPECT_LT(std::abs(nested - native) / std::max(native, 1.0), 0.15)
        << "EBs=" << eb;
  }
}

TEST(Tpcw, NoImagesNestedDegradesUnderLoad) {
  // Fig. 12(b): CPU-bound workload — nested up to ~50 % worse at high load.
  const TpcwModel model;
  const double native400 =
      model.response_time_ms(400, TpcwScenario::kNoImages, HostKind::kNativeVm);
  const double nested400 =
      model.response_time_ms(400, TpcwScenario::kNoImages, HostKind::kNestedVm);
  EXPECT_GT(nested400, 1.4 * native400);

  // At light load the gap is modest (overhead is load-dependent).
  const double native100 =
      model.response_time_ms(100, TpcwScenario::kNoImages, HostKind::kNativeVm);
  const double nested100 =
      model.response_time_ms(100, TpcwScenario::kNoImages, HostKind::kNestedVm);
  EXPECT_LT(nested100 / native100, nested400 / native400);
}

TEST(Tpcw, WithImagesIsSlowerThanWithout) {
  // Serving images through the site adds I/O demand.
  const TpcwModel model;
  EXPECT_GT(model.response_time_ms(300, TpcwScenario::kWithImages,
                                   HostKind::kNativeVm),
            model.response_time_ms(300, TpcwScenario::kNoImages,
                                   HostKind::kNativeVm));
}

TEST(Tpcw, ResponseMagnitudesInPaperBallpark) {
  // Fig. 12(a) shows multi-second responses at 400 EBs with images;
  // Fig. 12(b) stays below ~10 s without images.
  const TpcwModel model;
  const double with_images =
      model.response_time_ms(400, TpcwScenario::kWithImages, HostKind::kNativeVm);
  EXPECT_GT(with_images, 5000.0);
  EXPECT_LT(with_images, 30000.0);
  const double no_images =
      model.response_time_ms(400, TpcwScenario::kNoImages, HostKind::kNestedVm);
  EXPECT_LT(no_images, 12000.0);
}

TEST(Tpcw, ThroughputSaturatesAtBottleneck) {
  const TpcwModel model;
  const auto cfg = model.config();
  const double x =
      model.throughput_per_s(400, TpcwScenario::kWithImages, HostKind::kNativeVm);
  EXPECT_LE(x, 1.0 / cfg.io_demand_with_images_s + 1e-6);
}

TEST(Tpcw, NestedFixedPointConverges) {
  // Run with very few iterations vs many: result must be stable by 12.
  TpcwConfig few;
  few.fixed_point_iterations = 12;
  TpcwConfig many;
  many.fixed_point_iterations = 50;
  const double a = TpcwModel(few).response_time_ms(350, TpcwScenario::kNoImages,
                                                   HostKind::kNestedVm);
  const double b = TpcwModel(many).response_time_ms(350, TpcwScenario::kNoImages,
                                                    HostKind::kNestedVm);
  EXPECT_NEAR(a, b, 1.0);
}

TEST(Tpcw, RejectsBadConfig) {
  TpcwConfig bad;
  bad.cpu_demand_s = 0.0;
  EXPECT_THROW(TpcwModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace spothost::workload
